//! One-shot execution of a full renaming system on the simulator.
//!
//! The runner assembles correct actors from the supplied original ids,
//! places caller-provided Byzantine actors at seeded positions, executes the
//! exact number of communication steps the algorithm specifies, and returns
//! the outcome plus metrics and invariant probes.

use crate::messages::{Alg1Msg, TwoStepMsg};
use crate::probe::{
    shared_probe, shared_two_step_probe, Alg1Probe, SharedProcessProbe, SharedTwoStepProbe,
    TwoStepProbe,
};
use crate::renaming::OrderPreservingRenaming;
use crate::two_step::TwoStepRenaming;
use opr_metrics::MetricsRegistry;
use opr_obs::{shared_recorder, ProcessLog, RunLog, SharedRecorder, SharedSpanLog};
use opr_rbcast::IdInterner;
use opr_sim::{Actor, Inbox, Outbox, RunMetrics, Topology, Trace, TraceMode, WireSize};
use opr_transport::{BackendKind, FaultPlan, Job};
use opr_types::{
    MalformedSend, NewName, OriginalId, Regime, RenamingError, RenamingOutcome, Round, SystemConfig,
};
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Context handed to an adversary factory for each faulty actor it builds.
///
/// This deliberately exposes *everything*: the paper's adversary is
/// full-information — Byzantine processes know the protocol, each other, the
/// topology and all original ids, and coordinate perfectly. Strategies that
/// target specific correct processes (e.g. delivering an echo to exactly
/// `N − 2t` of them) use [`AdversaryEnv::topology`] and
/// [`AdversaryEnv::correct_assignments`] to aim.
#[derive(Clone, Debug)]
pub struct AdversaryEnv<'a> {
    /// The system configuration.
    pub cfg: SystemConfig,
    /// 0-based slot among the faulty actors (0 ⋯ faulty_count−1).
    pub slot: usize,
    /// How many faulty actors there are in total (for coordinated plans).
    pub faulty_count: usize,
    /// The actor's index in the network (useful for per-actor seeding).
    pub index: usize,
    /// The original ids of the correct processes, ascending.
    pub correct_ids: &'a [OriginalId],
    /// `(actor index, original id)` of every correct process.
    pub correct_assignments: &'a [(usize, OriginalId)],
    /// The full network topology (who is behind each of my links).
    pub topology: &'a Topology,
    /// The run seed.
    pub seed: u64,
    /// The run-wide id interner every correct process's bitset payloads are
    /// relative to. Adversaries building [`opr_rbcast::IdSlotSet`] payloads
    /// should build them against this so forged messages travel the
    /// zero-decode fast path; sets built on a private interner stay correct
    /// through the decode fallback.
    pub interner: IdInterner<OriginalId>,
}

impl AdversaryEnv<'_> {
    /// The link labels (at this faulty actor) leading to each correct
    /// process, in ascending order of the correct process's original id.
    pub fn links_to_correct(&self) -> Vec<opr_types::LinkId> {
        let me = opr_types::ProcessIndex::new(self.index);
        let mut pairs: Vec<(OriginalId, opr_types::LinkId)> = self
            .correct_assignments
            .iter()
            .map(|&(idx, id)| {
                let peer = opr_types::ProcessIndex::new(idx);
                // The link *from me to peer* has the label l where
                // topology.peer(me, l) == peer; that is peer's position in
                // my local table, recoverable via the inverse relation.
                let l = (1..=self.cfg.n())
                    .map(opr_types::LinkId::new)
                    .find(|&l| self.topology.peer(me, l) == peer)
                    .expect("full mesh: a link to every process exists");
                (id, l)
            })
            .collect();
        pairs.sort_by_key(|&(id, _)| id);
        pairs.into_iter().map(|(_, l)| l).collect()
    }
}

/// Options for [`run_alg1`].
#[derive(Clone, Debug, Default)]
pub struct Alg1Options {
    /// Seed for topology labelling and faulty-actor placement.
    pub seed: u64,
    /// Skip the resilience precondition — for the boundary experiment (T5)
    /// that deliberately runs the algorithm outside its regime to observe
    /// the failure mode.
    pub allow_regime_violation: bool,
    /// Algorithm knobs (extra/overridden voting steps, validation and δ
    /// ablations, early output); see [`Alg1Tweaks`](crate::renaming::Alg1Tweaks).
    pub tweaks: crate::renaming::Alg1Tweaks,
    /// Which execution substrate runs the system (observationally
    /// equivalent; defaults to the single-threaded simulator).
    pub backend: BackendKind,
    /// Transport-level faults applied below the actors (drops and
    /// delay-to-silence schedules on chosen links).
    pub faults: FaultPlan,
    /// Skip the `faulty_count ≤ t` check — for over-budget chaos campaigns
    /// that deliberately exceed the fault bound to observe degradation.
    /// Strict entry points will then typically fail with
    /// [`RenamingError::MissedTermination`]; the `*_observed` entry points
    /// report what happened instead.
    pub allow_fault_overrun: bool,
    /// When `Some(cap)`, sends wider than `cap` bits are rejected at the
    /// transport and recorded as [`MalformedSend`]s.
    pub payload_cap: Option<u64>,
    /// When `Some(capacity)`, record up to `capacity` delivery events and
    /// return them in [`ObservedRun::trace`].
    pub trace_capacity: Option<usize>,
    /// What a full trace buffer sacrifices (oldest vs. newest events).
    pub trace_mode: TraceMode,
    /// When `true`, attach a protocol-event recorder to every correct actor
    /// and return the deterministic streams in [`ObservedRun::events`].
    pub record_events: bool,
    /// When attached, the substrate records per-round wall-clock spans here
    /// (observability only — never part of the deterministic stream).
    pub spans: Option<SharedSpanLog>,
    /// When attached, the substrate records per-round wall-clock timing
    /// histograms here (same plane as `spans` — never deterministic).
    pub metrics: Option<MetricsRegistry>,
}

/// Options for [`run_two_step_with`].
#[derive(Clone, Debug)]
pub struct TwoStepOptions {
    /// Seed for topology labelling and faulty-actor placement.
    pub seed: u64,
    /// Whether offsets are clamped to `[0, t]` (the paper's algorithm; only
    /// ablation A2 switches this off — see [`TwoStepRenaming::with_clamp`]).
    pub clamp_offsets: bool,
    /// Which execution substrate runs the system.
    pub backend: BackendKind,
    /// Transport-level faults applied below the actors.
    pub faults: FaultPlan,
    /// Skip the `faulty_count ≤ t` check (see
    /// [`Alg1Options::allow_fault_overrun`]).
    pub allow_fault_overrun: bool,
    /// When `Some(cap)`, sends wider than `cap` bits are rejected at the
    /// transport and recorded as [`MalformedSend`]s.
    pub payload_cap: Option<u64>,
    /// When `Some(capacity)`, record up to `capacity` delivery events and
    /// return them in [`ObservedRun::trace`].
    pub trace_capacity: Option<usize>,
    /// What a full trace buffer sacrifices (oldest vs. newest events).
    pub trace_mode: TraceMode,
    /// When `true`, attach a protocol-event recorder to every correct actor
    /// and return the deterministic streams in [`ObservedRun::events`].
    pub record_events: bool,
    /// When attached, the substrate records per-round wall-clock spans here
    /// (observability only — never part of the deterministic stream).
    pub spans: Option<SharedSpanLog>,
    /// When attached, the substrate records per-round wall-clock timing
    /// histograms here (same plane as `spans` — never deterministic).
    pub metrics: Option<MetricsRegistry>,
}

impl Default for TwoStepOptions {
    fn default() -> Self {
        TwoStepOptions {
            seed: 0,
            clamp_offsets: true,
            backend: BackendKind::default(),
            faults: FaultPlan::default(),
            allow_fault_overrun: false,
            payload_cap: None,
            trace_capacity: None,
            trace_mode: TraceMode::KeepFirst,
            record_events: false,
            spans: None,
            metrics: None,
        }
    }
}

/// Everything observed in one run.
#[derive(Clone, Debug)]
pub struct RunResult<P> {
    /// Names decided by the correct processes.
    pub outcome: RenamingOutcome,
    /// Network metrics (rounds, messages, bits).
    pub metrics: RunMetrics,
    /// Rounds executed.
    pub rounds: u32,
    /// Aggregated invariant probes.
    pub probe: P,
}

/// Everything observed in one run, *without* judging it — missed
/// termination and malformed traffic are reported, not turned into errors.
/// This is the entry point for chaos campaigns: the caller (an oracle
/// suite) decides whether what happened was acceptable for the fault load
/// it injected. [`ObservedRun::strict`] recovers the classic judging
/// behaviour.
#[derive(Clone, Debug)]
pub struct ObservedRun<P> {
    /// Names decided by the correct processes (undecided ⇒ absent).
    pub outcome: RenamingOutcome,
    /// Network metrics (rounds, messages, bits).
    pub metrics: RunMetrics,
    /// Rounds executed.
    pub rounds: u32,
    /// The step budget the run was given.
    pub step_budget: u32,
    /// Whether every correct process decided within the budget.
    pub completed: bool,
    /// Sends the transport rejected, in `(round, sender, occurrence)` order.
    pub malformed: Vec<MalformedSend>,
    /// Which actor indices were Byzantine (`true` = faulty).
    pub faulty_mask: Vec<bool>,
    /// Delivery events, present iff a `trace_capacity` was requested.
    pub trace: Option<Trace>,
    /// Per-process protocol event streams, present iff event recording was
    /// requested. Deterministic: bit-identical across backends and job
    /// counts for the same schedule.
    pub events: Option<RunLog>,
    /// Aggregated invariant probes.
    pub probe: P,
}

impl<P> ObservedRun<P> {
    /// The malformed sends attributable to *correct* processes — always a
    /// protocol or harness bug, never legitimate degradation.
    pub fn correct_malformed(&self) -> Vec<MalformedSend> {
        self.malformed
            .iter()
            .filter(|m| !self.faulty_mask[m.sender.index()])
            .copied()
            .collect()
    }

    /// Converts the observation into the strict judgement the classic entry
    /// points give: malformed traffic from a correct process or a missed
    /// termination becomes an `Err`.
    ///
    /// # Errors
    ///
    /// [`RenamingError::CorrectMalformed`] if a correct process sent
    /// malformed traffic; [`RenamingError::MissedTermination`] if any
    /// correct process failed to decide within the step budget.
    pub fn strict(self) -> Result<RunResult<P>, RenamingError> {
        if let Some(&m) = self.correct_malformed().first() {
            return Err(RenamingError::CorrectMalformed(m));
        }
        if !self.completed {
            return Err(RenamingError::MissedTermination {
                budget: self.step_budget,
            });
        }
        Ok(RunResult {
            outcome: self.outcome,
            metrics: self.metrics,
            rounds: self.rounds,
            probe: self.probe,
        })
    }
}

/// An actor that never sends and never decides — the default Byzantine
/// behaviour when an adversary factory returns `None` (a silent process is
/// indistinguishable from a crashed one).
pub struct SilentActor<M, O>(PhantomData<fn() -> (M, O)>);

impl<M, O> SilentActor<M, O> {
    /// Creates a silent actor.
    pub fn new() -> Self {
        SilentActor(PhantomData)
    }
}

impl<M, O> Default for SilentActor<M, O> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M, O> Actor for SilentActor<M, O> {
    type Msg = M;
    type Output = O;
    fn send(&mut self, _round: Round) -> Outbox<M> {
        Outbox::Silent
    }
    fn deliver(&mut self, _round: Round, _inbox: Inbox<M>) {}
    fn output(&self) -> Option<O> {
        None
    }
}

fn validate(
    cfg: SystemConfig,
    correct_ids: &[OriginalId],
    faulty_count: usize,
    allow_fault_overrun: bool,
) -> Result<(), RenamingError> {
    if !allow_fault_overrun && faulty_count > cfg.t() {
        return Err(RenamingError::TooManyFaultyActors {
            got: faulty_count,
            bound: cfg.t(),
        });
    }
    if correct_ids.len() + faulty_count != cfg.n() {
        return Err(RenamingError::WrongIdCount {
            got: correct_ids.len(),
            expected: cfg.n() - faulty_count,
        });
    }
    let distinct: BTreeSet<OriginalId> = correct_ids.iter().copied().collect();
    if distinct.len() != correct_ids.len() {
        return Err(RenamingError::DuplicateOriginalIds);
    }
    Ok(())
}

/// Deterministic placement of faulty actors: a seeded permutation of the
/// actor indices, faulty first. Public so chaos generators can predict
/// which indices a given `(n, faulty_count, seed)` run treats as Byzantine
/// and aim transport faults at known-correct processes.
pub fn fault_placement(n: usize, faulty_count: usize, seed: u64) -> Vec<bool> {
    // splitmix64-style mixing; self-contained so placement is stable across
    // rand versions.
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut indices: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        indices.swap(i, j);
    }
    let mut faulty = vec![false; n];
    for &idx in indices.iter().take(faulty_count) {
        faulty[idx] = true;
    }
    faulty
}

/// Substrate- and transport-level knobs shared by every runner entry point.
struct RunKnobs {
    seed: u64,
    total_steps: u32,
    backend: BackendKind,
    faults: FaultPlan,
    allow_fault_overrun: bool,
    payload_cap: Option<u64>,
    trace_capacity: Option<usize>,
    trace_mode: TraceMode,
    spans: Option<SharedSpanLog>,
    metrics: Option<MetricsRegistry>,
    /// The run's shared id-slot registry, handed to every adversary's
    /// [`AdversaryEnv`] so forged payloads encode against the same slots.
    interner: IdInterner<OriginalId>,
}

fn generic_run<M, F, C, P>(
    cfg: SystemConfig,
    correct_ids: &[OriginalId],
    faulty_count: usize,
    knobs: RunKnobs,
    mut make_adversary: F,
    mut make_correct: C,
    collectors: (impl FnOnce() -> P, impl FnOnce() -> Option<RunLog>),
) -> Result<ObservedRun<P>, RenamingError>
where
    M: Clone + Debug + WireSize + Send + Sync + 'static,
    F: FnMut(&AdversaryEnv) -> Option<Box<dyn Actor<Msg = M, Output = NewName>>>,
    C: FnMut(OriginalId) -> Box<dyn Actor<Msg = M, Output = NewName>>,
{
    let RunKnobs {
        seed,
        total_steps,
        backend,
        faults,
        allow_fault_overrun,
        payload_cap,
        trace_capacity,
        trace_mode,
        spans,
        metrics,
        interner,
    } = knobs;
    validate(cfg, correct_ids, faulty_count, allow_fault_overrun)?;
    let n = cfg.n();
    let faulty_mask = fault_placement(n, faulty_count, seed);
    let topology = Topology::seeded(n, seed);
    // Pre-compute the correct placements so adversaries can aim.
    let mut sorted_ids: Vec<OriginalId> = correct_ids.to_vec();
    sorted_ids.sort_unstable();
    let correct_positions: Vec<(usize, OriginalId)> = {
        let mut id_iter = correct_ids.iter().copied();
        faulty_mask
            .iter()
            .enumerate()
            .filter(|(_, &f)| !f)
            .map(|(index, _)| (index, id_iter.next().expect("count checked by validate")))
            .collect()
    };
    let mut actors: Vec<Box<dyn Actor<Msg = M, Output = NewName>>> = Vec::with_capacity(n);
    let mut correct_mask = Vec::with_capacity(n);
    let mut position_iter = correct_positions.iter();
    let mut slot = 0usize;
    for (index, &is_faulty) in faulty_mask.iter().enumerate() {
        if is_faulty {
            let env = AdversaryEnv {
                cfg,
                slot,
                faulty_count,
                index,
                correct_ids: &sorted_ids,
                correct_assignments: &correct_positions,
                topology: &topology,
                seed,
                interner: interner.clone(),
            };
            slot += 1;
            actors.push(make_adversary(&env).unwrap_or_else(|| Box::new(SilentActor::new())));
            correct_mask.push(false);
        } else {
            let (_, id) = position_iter.next().expect("mask and positions agree");
            actors.push(make_correct(*id));
            correct_mask.push(true);
        }
    }
    let mut job = Job::with_faulty(actors, correct_mask, topology, total_steps).faults(faults);
    if let Some(cap) = payload_cap {
        job = job.payload_cap(cap);
    }
    if let Some(capacity) = trace_capacity {
        job = job.trace(capacity).trace_mode(trace_mode);
    }
    if let Some(log) = spans {
        job = job.spans(log);
    }
    if let Some(registry) = metrics {
        job = job.metrics(registry);
    }
    let report = backend.execute(job);
    let outcome = RenamingOutcome::new(
        correct_positions
            .iter()
            .map(|&(index, id)| (id, report.outputs[index])),
    );
    Ok(ObservedRun {
        outcome,
        metrics: report.metrics,
        rounds: report.rounds_executed,
        step_budget: total_steps,
        completed: report.completed,
        malformed: report.malformed,
        faulty_mask,
        trace: report.trace,
        events: (collectors.1)(),
        probe: (collectors.0)(),
    })
}

/// Builds the `make_correct`-side recorder plumbing for an observed run:
/// a store the actor factory pushes `(id, recorder)` pairs into, and the
/// closure turning them into a [`RunLog`] after the run (or `None` when
/// recording is off — disabled runs never construct recorders).
fn event_collector(
    recorders: &std::cell::RefCell<Vec<(OriginalId, SharedRecorder)>>,
    record_events: bool,
) -> impl FnOnce() -> Option<RunLog> + '_ {
    move || {
        record_events.then(|| RunLog {
            processes: recorders
                .borrow()
                .iter()
                .map(|(id, rec)| ProcessLog {
                    id: *id,
                    events: rec.lock().unwrap().events().to_vec(),
                })
                .collect(),
        })
    }
}

/// Runs Algorithm 1 (`regime` selects the log-time or constant-time voting
/// schedule) with `faulty_count` Byzantine actors built by `adversary`
/// (`None` ⇒ silent).
///
/// # Errors
///
/// Returns [`RenamingError`] for invalid configurations, id sets, fault
/// counts, or if any correct process fails to decide within the algorithm's
/// step budget (which would indicate a protocol bug — the algorithms are
/// fixed-length).
pub fn run_alg1<F>(
    cfg: SystemConfig,
    regime: Regime,
    correct_ids: &[OriginalId],
    faulty_count: usize,
    adversary: F,
    opts: Alg1Options,
) -> Result<RunResult<Alg1Probe>, RenamingError>
where
    F: FnMut(&AdversaryEnv) -> Option<Box<dyn Actor<Msg = Alg1Msg, Output = NewName>>>,
{
    run_alg1_observed(cfg, regime, correct_ids, faulty_count, adversary, opts)?.strict()
}

/// [`run_alg1`] without the strict judgement: missed terminations and
/// malformed sends are *reported* in the [`ObservedRun`] instead of becoming
/// errors. Combined with [`Alg1Options::allow_fault_overrun`], this is how
/// chaos campaigns observe degradation beyond the fault bound.
///
/// # Errors
///
/// Returns [`RenamingError`] only for invalid configurations, id sets or
/// (unless overrun is allowed) fault counts — never for what happened
/// during the run itself.
pub fn run_alg1_observed<F>(
    cfg: SystemConfig,
    regime: Regime,
    correct_ids: &[OriginalId],
    faulty_count: usize,
    adversary: F,
    opts: Alg1Options,
) -> Result<ObservedRun<Alg1Probe>, RenamingError>
where
    F: FnMut(&AdversaryEnv) -> Option<Box<dyn Actor<Msg = Alg1Msg, Output = NewName>>>,
{
    if !opts.allow_regime_violation {
        cfg.require(regime)?;
    }
    let voting = opts
        .tweaks
        .voting_steps_override
        .unwrap_or_else(|| cfg.voting_steps(regime))
        + opts.tweaks.extra_voting_steps;
    let total_steps = 4 + voting;
    let probes = std::cell::RefCell::new(Vec::new());
    let recorders = std::cell::RefCell::new(Vec::new());
    let interner = IdInterner::new();
    generic_run(
        cfg,
        correct_ids,
        faulty_count,
        RunKnobs {
            seed: opts.seed,
            total_steps,
            backend: opts.backend,
            faults: opts.faults,
            allow_fault_overrun: opts.allow_fault_overrun,
            payload_cap: opts.payload_cap,
            trace_capacity: opts.trace_capacity,
            trace_mode: opts.trace_mode,
            spans: opts.spans.clone(),
            metrics: opts.metrics.clone(),
            interner: interner.clone(),
        },
        adversary,
        |id| {
            let mut actor = OrderPreservingRenaming::new_unchecked(cfg, regime, id, opts.tweaks);
            actor.share_interner(interner.clone());
            let sink = shared_probe();
            actor.attach_probe(sink.clone());
            probes.borrow_mut().push(sink);
            if opts.record_events {
                let rec = shared_recorder();
                actor.attach_recorder(rec.clone());
                recorders.borrow_mut().push((id, rec));
            }
            Box::new(actor)
        },
        (
            || Alg1Probe {
                processes: probes
                    .borrow()
                    .iter()
                    .map(|p: &SharedProcessProbe| p.lock().unwrap().clone())
                    .collect(),
            },
            event_collector(&recorders, opts.record_events),
        ),
    )
}

/// Runs Algorithm 4 (2-step renaming) with `faulty_count` Byzantine actors
/// built by `adversary` (`None` ⇒ silent).
///
/// # Errors
///
/// Same conditions as [`run_alg1`].
pub fn run_two_step<F>(
    cfg: SystemConfig,
    correct_ids: &[OriginalId],
    faulty_count: usize,
    adversary: F,
    seed: u64,
) -> Result<RunResult<TwoStepProbe>, RenamingError>
where
    F: FnMut(&AdversaryEnv) -> Option<Box<dyn Actor<Msg = TwoStepMsg, Output = NewName>>>,
{
    run_two_step_with(
        cfg,
        correct_ids,
        faulty_count,
        adversary,
        TwoStepOptions {
            seed,
            ..TwoStepOptions::default()
        },
    )
}

/// [`run_two_step`] with the offset clamp made optional — ablation A2 only
/// (see [`TwoStepRenaming::with_clamp`]).
///
/// # Errors
///
/// Same conditions as [`run_alg1`].
pub fn run_two_step_clamped<F>(
    cfg: SystemConfig,
    correct_ids: &[OriginalId],
    faulty_count: usize,
    adversary: F,
    seed: u64,
    clamp_offsets: bool,
) -> Result<RunResult<TwoStepProbe>, RenamingError>
where
    F: FnMut(&AdversaryEnv) -> Option<Box<dyn Actor<Msg = TwoStepMsg, Output = NewName>>>,
{
    run_two_step_with(
        cfg,
        correct_ids,
        faulty_count,
        adversary,
        TwoStepOptions {
            seed,
            clamp_offsets,
            ..TwoStepOptions::default()
        },
    )
}

/// Runs Algorithm 4 with full control over substrate, transport faults, seed
/// and the offset clamp.
///
/// # Errors
///
/// Same conditions as [`run_alg1`].
pub fn run_two_step_with<F>(
    cfg: SystemConfig,
    correct_ids: &[OriginalId],
    faulty_count: usize,
    adversary: F,
    opts: TwoStepOptions,
) -> Result<RunResult<TwoStepProbe>, RenamingError>
where
    F: FnMut(&AdversaryEnv) -> Option<Box<dyn Actor<Msg = TwoStepMsg, Output = NewName>>>,
{
    run_two_step_observed(cfg, correct_ids, faulty_count, adversary, opts)?.strict()
}

/// [`run_two_step_with`] without the strict judgement; see
/// [`run_alg1_observed`] for the contract.
///
/// # Errors
///
/// Returns [`RenamingError`] only for invalid configurations, id sets or
/// (unless overrun is allowed) fault counts.
pub fn run_two_step_observed<F>(
    cfg: SystemConfig,
    correct_ids: &[OriginalId],
    faulty_count: usize,
    adversary: F,
    opts: TwoStepOptions,
) -> Result<ObservedRun<TwoStepProbe>, RenamingError>
where
    F: FnMut(&AdversaryEnv) -> Option<Box<dyn Actor<Msg = TwoStepMsg, Output = NewName>>>,
{
    cfg.require(Regime::TwoStep)?;
    let probes = std::cell::RefCell::new(Vec::new());
    let recorders = std::cell::RefCell::new(Vec::new());
    let interner = IdInterner::new();
    generic_run(
        cfg,
        correct_ids,
        faulty_count,
        RunKnobs {
            seed: opts.seed,
            total_steps: 2,
            backend: opts.backend,
            faults: opts.faults,
            allow_fault_overrun: opts.allow_fault_overrun,
            payload_cap: opts.payload_cap,
            trace_capacity: opts.trace_capacity,
            trace_mode: opts.trace_mode,
            spans: opts.spans.clone(),
            metrics: opts.metrics.clone(),
            interner: interner.clone(),
        },
        adversary,
        |id| {
            let mut actor = TwoStepRenaming::with_clamp(cfg, id, opts.clamp_offsets)
                .expect("regime checked above");
            actor.share_interner(interner.clone());
            let sink = shared_two_step_probe();
            actor.attach_probe(sink.clone());
            probes.borrow_mut().push(sink);
            if opts.record_events {
                let rec = shared_recorder();
                actor.attach_recorder(rec.clone());
                recorders.borrow_mut().push((id, rec));
            }
            Box::new(actor)
        },
        (
            || TwoStepProbe {
                processes: probes
                    .borrow()
                    .iter()
                    .map(|p: &SharedTwoStepProbe| p.lock().unwrap().clone())
                    .collect(),
            },
            event_collector(&recorders, opts.record_events),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u64]) -> Vec<OriginalId> {
        raw.iter().map(|&x| OriginalId::new(x)).collect()
    }

    #[test]
    fn alg1_with_silent_byzantine_upholds_all_properties() {
        let cfg = SystemConfig::new(7, 2).unwrap();
        for seed in 0..5 {
            let result = run_alg1(
                cfg,
                Regime::LogTime,
                &ids(&[100, 2, 57, 31, 9]),
                2,
                |_| None,
                Alg1Options {
                    seed,
                    ..Alg1Options::default()
                },
            )
            .unwrap();
            let m = cfg.namespace_bound(Regime::LogTime);
            assert!(result.outcome.verify(m).is_empty(), "seed {seed}");
            assert_eq!(result.rounds, cfg.total_steps(Regime::LogTime));
            assert_eq!(result.probe.processes.len(), 5);
            assert_eq!(result.probe.containment_violations(), 0);
        }
    }

    #[test]
    fn two_step_with_silent_byzantine_upholds_all_properties() {
        let cfg = SystemConfig::new(11, 2).unwrap();
        let result = run_two_step(
            cfg,
            &ids(&[5, 10, 15, 20, 25, 30, 35, 40, 45]),
            2,
            |_| None,
            3,
        )
        .unwrap();
        assert!(result.outcome.verify(121).is_empty());
        assert_eq!(result.rounds, 2);
    }

    #[test]
    fn rejects_too_many_faulty() {
        let cfg = SystemConfig::new(7, 2).unwrap();
        let err = run_alg1(
            cfg,
            Regime::LogTime,
            &ids(&[1, 2, 3, 4]),
            3,
            |_| None,
            Alg1Options::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RenamingError::TooManyFaultyActors { .. }));
    }

    #[test]
    fn rejects_wrong_id_count() {
        let cfg = SystemConfig::new(7, 2).unwrap();
        let err = run_alg1(
            cfg,
            Regime::LogTime,
            &ids(&[1, 2, 3]),
            2,
            |_| None,
            Alg1Options::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RenamingError::WrongIdCount { .. }));
    }

    #[test]
    fn rejects_duplicate_ids() {
        let cfg = SystemConfig::new(7, 2).unwrap();
        let err = run_alg1(
            cfg,
            Regime::LogTime,
            &ids(&[1, 2, 2, 4, 5]),
            2,
            |_| None,
            Alg1Options::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RenamingError::DuplicateOriginalIds));
    }

    #[test]
    fn placement_is_deterministic_and_spread() {
        let a = fault_placement(10, 3, 42);
        let b = fault_placement(10, 3, 42);
        assert_eq!(a, b);
        assert_eq!(a.iter().filter(|&&f| f).count(), 3);
        let c = fault_placement(10, 3, 43);
        // Different seeds usually place differently (not guaranteed for
        // every pair, but 42 vs 43 differ).
        assert_ne!(a, c);
    }

    #[test]
    fn observed_run_reports_instead_of_erroring() {
        // Crash every process's transport from round 1: nobody hears
        // anything, so nobody can decide — the strict path errors, the
        // observed path reports.
        let cfg = SystemConfig::new(7, 2).unwrap();
        let correct = ids(&[1, 2, 3, 4, 5]);
        let mut faults = FaultPlan::new();
        for p in 0..7 {
            faults = faults.crash_from(p, Round::FIRST);
        }
        let opts = |faults: FaultPlan| Alg1Options {
            faults,
            ..Alg1Options::default()
        };
        let err = run_alg1(
            cfg,
            Regime::LogTime,
            &correct,
            2,
            |_| None,
            opts(faults.clone()),
        )
        .unwrap_err();
        assert!(matches!(err, RenamingError::MissedTermination { .. }));
        let observed =
            run_alg1_observed(cfg, Regime::LogTime, &correct, 2, |_| None, opts(faults)).unwrap();
        assert!(!observed.completed);
        assert_eq!(observed.rounds, observed.step_budget);
        assert!(observed
            .outcome
            .decisions()
            .values()
            .all(|name| name.is_none()));
        assert_eq!(observed.faulty_mask.iter().filter(|&&f| f).count(), 2);
    }

    #[test]
    fn fault_overrun_is_rejected_unless_allowed() {
        let cfg = SystemConfig::new(7, 2).unwrap();
        let correct = ids(&[1, 2, 3, 4]);
        let err = run_alg1_observed(
            cfg,
            Regime::LogTime,
            &correct,
            3,
            |_| None,
            Alg1Options::default(),
        )
        .unwrap_err();
        assert!(matches!(err, RenamingError::TooManyFaultyActors { .. }));
        let observed = run_alg1_observed(
            cfg,
            Regime::LogTime,
            &correct,
            3,
            |_| None,
            Alg1Options {
                allow_fault_overrun: true,
                ..Alg1Options::default()
            },
        )
        .unwrap();
        // 3 silent faulty out of N=7 exceeds t=2; whatever happened, the
        // run must report rather than panic or error.
        assert_eq!(observed.faulty_mask.iter().filter(|&&f| f).count(), 3);
    }

    #[test]
    fn recorded_events_and_spans_are_returned_when_requested() {
        let cfg = SystemConfig::new(7, 2).unwrap();
        let spans = opr_obs::shared_span_log();
        let observed = run_alg1_observed(
            cfg,
            Regime::LogTime,
            &ids(&[100, 2, 57, 31, 9]),
            2,
            |_| None,
            Alg1Options {
                seed: 1,
                record_events: true,
                spans: Some(spans.clone()),
                ..Alg1Options::default()
            },
        )
        .unwrap();
        let events = observed.events.expect("recording was requested");
        assert_eq!(events.processes.len(), 5);
        assert!(!events.is_empty());
        // Process order follows the caller's correct-id order.
        let ids_seen: Vec<u64> = events.processes.iter().map(|p| p.id.raw()).collect();
        assert_eq!(ids_seen, vec![100, 2, 57, 31, 9]);
        // Every correct process reached a decision event.
        for p in &events.processes {
            assert!(p
                .events
                .iter()
                .any(|e| matches!(e, opr_obs::ProtocolEvent::Decided { .. })));
        }
        // One wall span per executed round.
        assert_eq!(
            spans.lock().unwrap().spans().len(),
            observed.rounds as usize
        );
    }

    #[test]
    fn disabled_recording_returns_no_events() {
        let cfg = SystemConfig::new(7, 2).unwrap();
        let observed = run_alg1_observed(
            cfg,
            Regime::LogTime,
            &ids(&[1, 2, 3, 4, 5]),
            2,
            |_| None,
            Alg1Options::default(),
        )
        .unwrap();
        assert!(observed.events.is_none());
    }

    #[test]
    fn adversary_env_exposes_slots_and_ids() {
        let cfg = SystemConfig::new(7, 2).unwrap();
        let mut seen_slots = Vec::new();
        let correct = ids(&[1, 2, 3, 4, 5]);
        let _ = run_alg1(
            cfg,
            Regime::LogTime,
            &correct,
            2,
            |env| {
                seen_slots.push(env.slot);
                assert_eq!(env.correct_ids.len(), 5);
                None
            },
            Alg1Options::default(),
        )
        .unwrap();
        assert_eq!(seen_slots, vec![0, 1]);
    }
}
