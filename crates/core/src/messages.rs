//! Message vocabularies of the paper's two protocols.

use opr_rbcast::{FloodMsg, IdSlotSet};
use opr_sim::{WireSize, COUNT_BITS, ID_BITS, RANK_BITS, TAG_BITS};
use opr_types::{OriginalId, Rank};

/// Messages of Algorithm 1.
#[derive(Clone, Debug, PartialEq)]
pub enum Alg1Msg {
    /// Steps 1–4: the id-selection flood (`Id` / `Echo` / `Ready`).
    Flood(FloodMsg<OriginalId>),
    /// Steps 5 and later: an `⟨AA, ranks⟩` vote — the sender's current rank
    /// for every id it still tracks, in ascending id order.
    Votes(Vec<(OriginalId, Rank)>),
}

impl WireSize for Alg1Msg {
    fn wire_bits(&self) -> u64 {
        match self {
            Alg1Msg::Flood(f) => TAG_BITS + f.wire_bits(),
            Alg1Msg::Votes(entries) => {
                TAG_BITS + COUNT_BITS + entries.len() as u64 * (ID_BITS + RANK_BITS)
            }
        }
    }
}

/// Messages of Algorithm 4 (2-step renaming).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TwoStepMsg {
    /// Step 1: announce one id.
    Id(OriginalId),
    /// Step 2: echo every id received in step 1, as an interned-slot bitset
    /// (value-rendered and value-sized, indistinguishable from the
    /// `BTreeSet` encoding it replaced).
    MultiEcho(IdSlotSet<OriginalId>),
}

impl WireSize for TwoStepMsg {
    fn wire_bits(&self) -> u64 {
        match self {
            TwoStepMsg::Id(_) => TAG_BITS + ID_BITS,
            TwoStepMsg::MultiEcho(ids) => TAG_BITS + COUNT_BITS + ids.len() as u64 * ID_BITS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alg1_vote_size_matches_paper_bound() {
        // Message size is O((N+t−1)(log Nmax + log N)) bits: linear in the
        // number of entries.
        let entries: Vec<(OriginalId, Rank)> = (0..12)
            .map(|i| (OriginalId::new(i), Rank::new(i as f64)))
            .collect();
        let msg = Alg1Msg::Votes(entries);
        assert_eq!(
            msg.wire_bits(),
            TAG_BITS + COUNT_BITS + 12 * (ID_BITS + RANK_BITS)
        );
    }

    #[test]
    fn two_step_multiecho_size_is_linear_in_ids() {
        // O(N log Nmax) bits (Section VI-B).
        let interner = opr_rbcast::IdInterner::new();
        let small = TwoStepMsg::MultiEcho(IdSlotSet::from_values(
            &interner,
            (0..2).map(OriginalId::new),
        ));
        let large = TwoStepMsg::MultiEcho(IdSlotSet::from_values(
            &interner,
            (0..10).map(OriginalId::new),
        ));
        assert_eq!(large.wire_bits() - small.wire_bits(), 8 * ID_BITS);
    }

    #[test]
    fn flood_wrapper_adds_only_tag_overhead() {
        let inner = FloodMsg::Init(OriginalId::new(7));
        let outer = Alg1Msg::Flood(inner.clone());
        assert_eq!(outer.wire_bits(), TAG_BITS + inner.wire_bits());
    }
}
