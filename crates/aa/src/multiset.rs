//! A sorted multiset with the trim/fill operations used by every AA variant.

use std::fmt::Debug;

/// An always-sorted multiset (duplicates allowed).
///
/// Backed by a sorted `Vec`, which is optimal at the sizes AA works with
/// (`|votes| ≤ N`).
///
/// # Example
///
/// ```
/// use opr_aa::OrderedMultiset;
/// let mut ms: OrderedMultiset<i32> = [5, 1, 5, 3].into_iter().collect();
/// assert_eq!(ms.as_slice(), &[1, 3, 5, 5]);
/// ms.trim(1); // drop 1 smallest and 1 largest
/// assert_eq!(ms.as_slice(), &[3, 5]);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct OrderedMultiset<T> {
    items: Vec<T>,
}

impl<T: Ord + Copy> OrderedMultiset<T> {
    /// An empty multiset.
    pub fn new() -> Self {
        OrderedMultiset { items: Vec::new() }
    }

    /// Builds from an owned vector, sorting in place — the zero-copy
    /// hand-off for callers that already bucketed their votes (e.g. the
    /// per-id aggregation over flooded sets in `opr-core`).
    pub fn from_vec(mut items: Vec<T>) -> Self {
        items.sort_unstable();
        OrderedMultiset { items }
    }

    /// Inserts a value, keeping the multiset sorted.
    pub fn insert(&mut self, value: T) {
        let pos = self.items.partition_point(|x| *x <= value);
        self.items.insert(pos, value);
    }

    /// Number of elements (with multiplicity).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the multiset is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The sorted contents.
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// Smallest element, if any.
    pub fn min(&self) -> Option<T> {
        self.items.first().copied()
    }

    /// Largest element, if any.
    pub fn max(&self) -> Option<T> {
        self.items.last().copied()
    }

    /// Removes the `t` smallest and `t` largest elements (Algorithm 3,
    /// lines 12–14). Clears the multiset if it has `≤ 2t` elements.
    pub fn trim(&mut self, t: usize) {
        if self.items.len() <= 2 * t {
            self.items.clear();
        } else {
            self.items.truncate(self.items.len() - t);
            self.items.drain(..t);
        }
    }

    /// Appends copies of `value` until the multiset has `n` elements
    /// (Algorithm 3, lines 10–11: fill missing votes with one's own vote).
    /// Does nothing if the multiset already has `≥ n` elements.
    ///
    /// The `k` missing copies form one contiguous run in sort order, so they
    /// are spliced in with a single insertion-point search and one shift of
    /// the tail — O(n + k) instead of the O(k·n) of repeated `insert`.
    pub fn fill_to(&mut self, n: usize, value: T) {
        if self.items.len() >= n {
            return;
        }
        let missing = n - self.items.len();
        let pos = self.items.partition_point(|x| *x <= value);
        self.items
            .splice(pos..pos, std::iter::repeat_n(value, missing));
    }

    /// How many elements of `self` are *not* in `other`, counting
    /// multiplicity — the multiset difference size `|self − other|` used in
    /// the proof of Lemma IV.8.
    pub fn difference_size(&self, other: &OrderedMultiset<T>) -> usize {
        let mut count = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.items.len() {
            if j >= other.items.len() || self.items[i] < other.items[j] {
                count += 1;
                i += 1;
            } else if self.items[i] == other.items[j] {
                i += 1;
                j += 1;
            } else {
                j += 1;
            }
        }
        count
    }
}

impl<T: Ord + Copy> FromIterator<T> for OrderedMultiset<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut items: Vec<T> = iter.into_iter().collect();
        items.sort_unstable();
        OrderedMultiset { items }
    }
}

impl<T: Ord + Copy> Extend<T> for OrderedMultiset<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        self.items.extend(iter);
        self.items.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_keeps_sorted_with_duplicates() {
        let mut ms = OrderedMultiset::new();
        for v in [4, 2, 4, 1, 3, 4] {
            ms.insert(v);
        }
        assert_eq!(ms.as_slice(), &[1, 2, 3, 4, 4, 4]);
        assert_eq!(ms.len(), 6);
        assert_eq!(ms.min(), Some(1));
        assert_eq!(ms.max(), Some(4));
    }

    #[test]
    fn trim_removes_extremes() {
        let mut ms: OrderedMultiset<i32> = (1..=10).collect();
        ms.trim(3);
        assert_eq!(ms.as_slice(), &[4, 5, 6, 7]);
    }

    #[test]
    fn trim_zero_is_identity() {
        let mut ms: OrderedMultiset<i32> = (1..=5).collect();
        ms.trim(0);
        assert_eq!(ms.len(), 5);
    }

    #[test]
    fn trim_clears_small_multisets() {
        let mut ms: OrderedMultiset<i32> = (1..=4).collect();
        ms.trim(2);
        assert!(ms.is_empty());
    }

    #[test]
    fn fill_to_pads_with_value() {
        let mut ms: OrderedMultiset<i32> = [5, 1].into_iter().collect();
        ms.fill_to(5, 3);
        assert_eq!(ms.as_slice(), &[1, 3, 3, 3, 5]);
        // Already long enough: no-op.
        ms.fill_to(2, 9);
        assert_eq!(ms.len(), 5);
    }

    #[test]
    fn difference_size_counts_multiplicity() {
        let a: OrderedMultiset<i32> = [1, 2, 2, 3].into_iter().collect();
        let b: OrderedMultiset<i32> = [2, 3, 4].into_iter().collect();
        // a − b = {1, 2}.
        assert_eq!(a.difference_size(&b), 2);
        // b − a = {4}.
        assert_eq!(b.difference_size(&a), 1);
        assert_eq!(a.difference_size(&a), 0);
    }

    proptest! {
        #[test]
        fn from_iterator_is_sorted(values in proptest::collection::vec(-1000i32..1000, 0..100)) {
            let ms: OrderedMultiset<i32> = values.iter().copied().collect();
            prop_assert!(ms.as_slice().windows(2).all(|w| w[0] <= w[1]));
            prop_assert_eq!(ms.len(), values.len());
        }

        #[test]
        fn trim_is_within_original_bounds(
            values in proptest::collection::vec(-1000i32..1000, 1..60),
            t in 0usize..10,
        ) {
            let mut ms: OrderedMultiset<i32> = values.iter().copied().collect();
            let (lo, hi) = (ms.min().unwrap(), ms.max().unwrap());
            ms.trim(t);
            for &v in ms.as_slice() {
                prop_assert!(v >= lo && v <= hi);
            }
            prop_assert_eq!(ms.len(), values.len().saturating_sub(2 * t));
        }

        #[test]
        fn fill_to_splice_matches_repeated_insert(
            values in proptest::collection::vec(-50i32..50, 0..40),
            n in 0usize..60,
            value in -60i32..60,
        ) {
            let mut spliced: OrderedMultiset<i32> = values.iter().copied().collect();
            spliced.fill_to(n, value);
            // The previous implementation, kept as the semantic reference.
            let mut looped: OrderedMultiset<i32> = values.iter().copied().collect();
            while looped.len() < n {
                looped.insert(value);
            }
            prop_assert_eq!(spliced, looped);
        }

        #[test]
        fn difference_size_triangle(
            a in proptest::collection::vec(0i32..20, 0..30),
            b in proptest::collection::vec(0i32..20, 0..30),
        ) {
            let ma: OrderedMultiset<i32> = a.iter().copied().collect();
            let mb: OrderedMultiset<i32> = b.iter().copied().collect();
            // |A| = |A∩B| + |A−B| ⇒ |A−B| ≥ |A| − |B|.
            let d = ma.difference_size(&mb);
            prop_assert!(d >= ma.len().saturating_sub(mb.len()));
            prop_assert!(d <= ma.len());
        }
    }
}
