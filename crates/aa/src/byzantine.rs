//! Standalone synchronous Byzantine approximate agreement (DLPSW).
//!
//! One value per process, one reduction per round. This is the primitive the
//! paper's voting phase runs per-id; having it standalone lets the test
//! suite and experiment F1 validate the `σ_t` contraction rate in isolation
//! from the renaming machinery.

use crate::multiset::OrderedMultiset;
use crate::select::reduce;
use opr_sim::{Actor, Inbox, Outbox, WireSize, RANK_BITS, TAG_BITS};
use opr_types::{Rank, Round};

/// Message carrying one AA value.
#[derive(Clone, Debug, PartialEq)]
pub struct AaMsg(pub Rank);

impl WireSize for AaMsg {
    fn wire_bits(&self) -> u64 {
        TAG_BITS + RANK_BITS
    }
}

/// A correct DLPSW approximate-agreement process.
///
/// Each round it broadcasts its value, collects the votes that arrived,
/// pads them to `N` with its own value, trims `t` extremes per side, selects
/// and averages. After `rounds` rounds it outputs its value.
///
/// # Example
///
/// See the crate-level docs of [`crate`] and the integration tests; the
/// protocol guarantees the outputs of correct processes lie within the range
/// of correct inputs and shrink by `σ_t` per round.
#[derive(Clone, Debug)]
pub struct ByzantineAa {
    n: usize,
    t: usize,
    rounds: u32,
    value: Rank,
    done: bool,
}

impl ByzantineAa {
    /// Creates a process with initial `value` that will run `rounds`
    /// reduction rounds in a system of `n` processes tolerating `t` faults.
    ///
    /// # Panics
    ///
    /// Panics unless `n > 3t` (DLPSW's resilience requirement).
    pub fn new(n: usize, t: usize, rounds: u32, value: Rank) -> Self {
        assert!(n > 3 * t, "Byzantine AA requires N > 3t");
        ByzantineAa {
            n,
            t,
            rounds,
            value,
            done: rounds == 0,
        }
    }

    /// The current value (the output once done).
    pub fn value(&self) -> Rank {
        self.value
    }
}

impl Actor for ByzantineAa {
    type Msg = AaMsg;
    type Output = Rank;

    fn send(&mut self, _round: Round) -> Outbox<AaMsg> {
        if self.done {
            Outbox::Silent
        } else {
            Outbox::Broadcast(AaMsg(self.value))
        }
    }

    fn deliver(&mut self, round: Round, inbox: Inbox<AaMsg>) {
        if self.done {
            return;
        }
        let mut votes: OrderedMultiset<Rank> = inbox.messages().map(|(_, m)| m.0).collect();
        // Fill missing votes with our own value ("local values are always
        // valid"); guarantees exactly N votes before trimming.
        votes.fill_to(self.n, self.value);
        self.value = reduce(&votes, self.t);
        if round.number() >= self.rounds {
            self.done = true;
        }
    }

    fn output(&self) -> Option<Rank> {
        self.done.then_some(self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::spread;
    use opr_sim::{Network, Topology};

    fn run_correct_only(n: usize, t: usize, rounds: u32, inputs: &[f64]) -> Vec<Rank> {
        let actors: Vec<Box<dyn Actor<Msg = AaMsg, Output = Rank>>> = inputs
            .iter()
            .map(|&v| {
                Box::new(ByzantineAa::new(n, t, rounds, Rank::new(v)))
                    as Box<dyn Actor<Msg = AaMsg, Output = Rank>>
            })
            .collect();
        let mut net = Network::new(actors, Topology::seeded(n, 1));
        let report = net.run(rounds + 1);
        assert!(report.completed);
        (0..n).map(|i| net.output_of(i).unwrap()).collect()
    }

    #[test]
    fn all_correct_converges_to_common_range() {
        let inputs = [1.0, 5.0, 9.0, 2.0];
        let outputs = run_correct_only(4, 1, 6, &inputs);
        assert!(spread(&outputs) < 1e-3, "spread {}", spread(&outputs));
        for out in outputs {
            assert!(out.value() >= 1.0 && out.value() <= 9.0);
        }
    }

    #[test]
    fn zero_rounds_outputs_input() {
        let outputs = run_correct_only(4, 1, 0, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(
            outputs,
            vec![
                Rank::new(1.0),
                Rank::new(2.0),
                Rank::new(3.0),
                Rank::new(4.0)
            ]
        );
    }

    #[test]
    fn contraction_is_at_least_sigma_per_round() {
        // With no Byzantine interference the spread shrinks at least by
        // σ_t each round.
        let n = 7;
        let t = 2;
        let inputs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let one = run_correct_only(n, t, 1, &inputs);
        let sigma = crate::select::sigma(n, t) as f64;
        assert!(
            spread(&one) <= 6.0 / sigma + 1e-9,
            "spread after one round: {}",
            spread(&one)
        );
    }

    #[test]
    #[should_panic(expected = "N > 3t")]
    fn rejects_insufficient_resilience() {
        let _ = ByzantineAa::new(3, 1, 1, Rank::new(0.0));
    }
}
