#![warn(missing_docs)]
//! Approximate-agreement building blocks and standalone protocols.
//!
//! In *approximate agreement* (AA) processes start with arbitrary real
//! values and must output values within a bounded distance of each other,
//! inside the range of the correct inputs. The paper's voting phase
//! (Algorithm 3) is a per-id parallel composition of the synchronous
//! Byzantine AA of Dolev, Lynch, Pinter, Stark & Weihl (JACM 1986), referred
//! to as DLPSW throughout this workspace.
//!
//! This crate provides:
//!
//! * [`OrderedMultiset`] — the sorted multiset with the `trim`/`select`
//!   operations all AA variants reduce votes with ([`multiset`]).
//! * [`reduce`] — the full DLPSW reduction `avg(select_t(trim_t(votes)))`
//!   plus its guaranteed contraction rate `σ_t` ([`select`]).
//! * [`ByzantineAa`] — standalone synchronous Byzantine AA on a single value
//!   ([`byzantine`]); used both as a reference implementation (its
//!   convergence is checked against `σ_t` in tests and experiment F1) and by
//!   the crash baseline.
//! * [`CrashAa`] — crash-tolerant averaging AA ([`crash`]), the primitive
//!   behind the Okun-style baseline B1.
//! * [`spread`] and convergence prediction helpers ([`convergence`]).
//!
//! # Example: one DLPSW reduction step
//!
//! ```
//! use opr_aa::{OrderedMultiset, reduce};
//!
//! // N = 7, t = 1: seven votes, one of which (99.0) is Byzantine garbage.
//! let votes = OrderedMultiset::from_iter([3.0f64, 3.1, 3.2, 2.9, 3.0, 3.1, 99.0]
//!     .map(ordered_float));
//! let new_value = reduce(&votes, 1);
//! assert!(new_value >= ordered_float(2.9) && new_value <= ordered_float(3.2));
//! # use opr_types::Rank;
//! # fn ordered_float(x: f64) -> Rank { Rank::new(x) }
//! ```

pub mod byzantine;
pub mod convergence;
pub mod crash;
pub mod multiset;
pub mod select;

pub use byzantine::ByzantineAa;
pub use convergence::{predicted_rounds, spread};
pub use crash::CrashAa;
pub use multiset::OrderedMultiset;
pub use select::{reduce, select_indices, sigma};
