//! The DLPSW reduction: `avg(select_t(trim_t(votes)))`.

use crate::multiset::OrderedMultiset;
use opr_types::Rank;

/// Indices chosen by `select_t` on an ordered multiset of `len` elements:
/// the smallest element and every `t`-th element after it — `0, t, 2t, …`
/// (Section IV-B). With `t = 0` there is nothing to defend against and every
/// index is selected.
pub fn select_indices(len: usize, t: usize) -> Vec<usize> {
    if t == 0 {
        return (0..len).collect();
    }
    (0..len).step_by(t).collect()
}

/// The guaranteed contraction rate of one reduction step:
/// `σ_t = ⌊(N − 2t)/t⌋ + 1` (Lemma IV.8). Returns `usize::MAX` for `t = 0`
/// ("infinite" contraction: with no faults all correct multisets agree after
/// one exchange).
pub fn sigma(n: usize, t: usize) -> usize {
    match n.saturating_sub(2 * t).checked_div(t) {
        Some(q) => q + 1,
        None => usize::MAX,
    }
}

/// Applies the full reduction to a vote multiset: discard the `t` smallest
/// and `t` largest, select the smallest remaining value and every `t`-th
/// after it, and average the selection (Algorithm 3, lines 12–16).
///
/// # Panics
///
/// Panics if fewer than `2t + 1` votes are supplied — the protocol
/// guarantees `≥ N − t ≥ 2t + 1` votes for any id it reduces, so fewer
/// indicates a harness bug.
pub fn reduce(votes: &OrderedMultiset<Rank>, t: usize) -> Rank {
    assert!(
        votes.len() > 2 * t,
        "reduce needs more than 2t votes (got {} with t={t})",
        votes.len()
    );
    let mut trimmed = votes.clone();
    trimmed.trim(t);
    let slice = trimmed.as_slice();
    let selected: Vec<Rank> = select_indices(slice.len(), t)
        .into_iter()
        .map(|i| slice[i])
        .collect();
    Rank::mean(&selected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn select_indices_pattern() {
        assert_eq!(select_indices(7, 2), vec![0, 2, 4, 6]);
        assert_eq!(select_indices(8, 3), vec![0, 3, 6]);
        assert_eq!(select_indices(1, 5), vec![0]);
        assert_eq!(select_indices(0, 2), Vec::<usize>::new());
        assert_eq!(select_indices(4, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn select_count_matches_sigma_on_trimmed_multiset() {
        // After trimming, |set| = N − 2t; the number selected is
        // ⌊(N−2t−1)/t⌋ + 1, which equals σ_t = ⌊(N−2t)/t⌋ + 1 except when t
        // divides N−2t exactly (then it is σ_t − 1 — the convergence proof
        // holds for either, and we follow the select definition).
        for (n, t) in [(4usize, 1usize), (7, 2), (10, 3), (13, 4), (16, 3)] {
            let count = select_indices(n - 2 * t, t).len();
            let sig = sigma(n, t);
            assert!(
                count == sig || count + 1 == sig,
                "N={n} t={t}: {count} vs σ={sig}"
            );
        }
    }

    #[test]
    fn sigma_examples() {
        assert_eq!(sigma(4, 1), 3); // ⌊2/1⌋+1
        assert_eq!(sigma(10, 3), 2); // ⌊4/3⌋+1
        assert_eq!(sigma(16, 3), 4); // ⌊10/3⌋+1
        assert_eq!(sigma(5, 0), usize::MAX);
    }

    #[test]
    fn reduce_ignores_t_outliers_per_side() {
        // N=7, t=1: one arbitrarily-low and the average must stay within
        // the correct values' range.
        let votes: OrderedMultiset<Rank> = [-1e9, 10.0, 10.5, 11.0, 11.5, 12.0, 12.5]
            .map(Rank::new)
            .into_iter()
            .collect();
        let out = reduce(&votes, 1);
        assert!(out >= Rank::new(10.0) && out <= Rank::new(12.5));
    }

    #[test]
    #[should_panic(expected = "more than 2t")]
    fn reduce_rejects_too_few_votes() {
        let votes: OrderedMultiset<Rank> = [1.0, 2.0].map(Rank::new).into_iter().collect();
        let _ = reduce(&votes, 1);
    }

    #[test]
    fn reduce_with_t_zero_is_plain_mean() {
        let votes: OrderedMultiset<Rank> = [1.0, 2.0, 3.0].map(Rank::new).into_iter().collect();
        assert_eq!(reduce(&votes, 0), Rank::new(2.0));
    }

    proptest! {
        /// The reduction must always land inside the range of the values
        /// that survive trimming — hence inside the correct values' range
        /// whenever at most t votes per side are faulty.
        #[test]
        fn reduce_stays_in_trimmed_range(
            values in proptest::collection::vec(-1e6f64..1e6, 4..40),
            t in 0usize..5,
        ) {
            prop_assume!(values.len() > 2 * t);
            let votes: OrderedMultiset<Rank> = values.iter().map(|&v| Rank::new(v)).collect();
            let mut trimmed = votes.clone();
            trimmed.trim(t);
            let out = reduce(&votes, t);
            prop_assert!(out >= trimmed.min().unwrap());
            prop_assert!(out <= trimmed.max().unwrap());
        }

        /// Pairwise contraction (the heart of Lemma IV.8): two vote
        /// multisets that share all but t elements reduce to values within
        /// spread/σ of each other.
        #[test]
        fn reduce_contracts_pairwise(
            common in proptest::collection::vec(-1e3f64..1e3, 5..30),
            byz_a in -1e6f64..1e6,
            byz_b in -1e6f64..1e6,
        ) {
            let t = 1usize;
            let n = common.len() + t;
            prop_assume!(n > 3 * t);
            let mut a: OrderedMultiset<Rank> = common.iter().map(|&v| Rank::new(v)).collect();
            let mut b = a.clone();
            a.insert(Rank::new(byz_a));
            b.insert(Rank::new(byz_b));
            let (ra, rb) = (reduce(&a, t), reduce(&b, t));
            let correct_spread = {
                let ms: OrderedMultiset<Rank> = common.iter().map(|&v| Rank::new(v)).collect();
                ms.max().unwrap().value() - ms.min().unwrap().value()
            };
            // The divisor in the proof of Lemma IV.8 is the number of
            // selected elements c = |select_t(trimmed)|.
            let c = select_indices(n - 2 * t, t).len() as f64;
            prop_assert!(
                ra.distance(rb) <= correct_spread / c + 1e-9,
                "|{} - {}| > {}/{}", ra, rb, correct_spread, c
            );
        }
    }
}
