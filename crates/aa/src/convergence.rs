//! Spread measurement and convergence prediction.

use opr_types::Rank;

/// The spread (max − min) of a set of rank values; `0` for fewer than two
/// values.
pub fn spread(values: &[Rank]) -> f64 {
    match (values.iter().min(), values.iter().max()) {
        (Some(lo), Some(hi)) => hi.value() - lo.value(),
        _ => 0.0,
    }
}

/// Number of reduction rounds needed to shrink `initial_spread` below
/// `target`, given per-round contraction `sigma` (Lemma IV.9's calculation,
/// generalized).
///
/// Returns `0` if the initial spread is already below target, and caps at
/// `u32::MAX` for degenerate contraction `≤ 1`.
pub fn predicted_rounds(initial_spread: f64, target: f64, sigma: usize) -> u32 {
    assert!(target > 0.0, "target spread must be positive");
    if initial_spread < target {
        return 0;
    }
    if sigma <= 1 {
        return u32::MAX;
    }
    if sigma == usize::MAX {
        return 1;
    }
    let mut spread = initial_spread;
    let mut rounds = 0u32;
    while spread >= target {
        spread /= sigma as f64;
        rounds += 1;
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_basics() {
        assert_eq!(spread(&[]), 0.0);
        assert_eq!(spread(&[Rank::new(3.0)]), 0.0);
        assert_eq!(spread(&[Rank::new(1.0), Rank::new(4.5)]), 3.5);
    }

    #[test]
    fn predicted_rounds_matches_log() {
        // Contraction 2 per round, spread 8 → target 1: 8→4→2→1(<1? no)…
        // needs 4 rounds to get strictly below 1.
        assert_eq!(predicted_rounds(8.0, 1.0, 2), 4);
        assert_eq!(predicted_rounds(0.5, 1.0, 2), 0);
        assert_eq!(predicted_rounds(100.0, 1.0, usize::MAX), 1);
        assert_eq!(predicted_rounds(100.0, 1.0, 1), u32::MAX);
    }

    #[test]
    fn paper_lemma_iv9_bound() {
        // Lemma IV.9: Δ₅ ≤ (2t−1)δ shrinks below (δ−1)/2 within
        // 3⌈log t⌉ + 3 rounds (σ ≥ 2 at the minimal-resilience N = 3t+1).
        //
        // Reproduction note (recorded in EXPERIMENTS.md): the paper's
        // numeric chain — (1/2)^{3⌈log t⌉+3}·2tδ < 1/(6(N+t)) — requires
        // roughly 4t² > 6(N+t), i.e. t ≥ 7 at N = 3t+1. For smaller t the
        // analytic worst case needs up to 3 extra halvings. Asymptotically
        // (t ≥ 7) the paper's budget holds; we assert exactly that, plus a
        // +3 cushion for the small-t regime.
        for t in 2usize..=64 {
            let n = 3 * t + 1;
            let delta = 1.0 + 1.0 / (3.0 * (n + t) as f64);
            let initial = (2.0 * t as f64 - 1.0) * delta;
            let target = (delta - 1.0) / 2.0;
            let budget = 3 * opr_types::math::ceil_log2(t) + 3;
            let needed = predicted_rounds(initial, target, 2);
            if t >= 7 {
                assert!(needed <= budget, "t={t}: need {needed}, budget {budget}");
            }
            assert!(
                needed <= budget + 3,
                "t={t}: need {needed}, cushioned budget {}",
                budget + 3
            );
        }
    }

    #[test]
    fn paper_lemma_v2_constant_regime() {
        // Lemma V.2 claims 4 voting rounds suffice in the N > t²+2t regime.
        // At the *exact* boundary N = t²+2t+1 the paper's chain of
        // inequalities (t·δ/(t+1)⁴ < 1/(3t³) < (δ−1)/2) is loose for small
        // t: the analytic worst case needs one extra round for t ∈ {2,3,4}.
        // We check (a) the bound as soon as N is a modest constant factor
        // above the boundary, and (b) that even at the boundary the analytic
        // requirement never exceeds 5 rounds.
        for t in 1usize..=32 {
            let sigma_at = |n: usize| (n - 2 * t) / t + 1;
            // (a) comfortably inside the regime: N = 2(t² + 2t) + 1.
            let n = 2 * (t * t + 2 * t) + 1;
            let delta = 1.0 + 1.0 / (3.0 * (n + t) as f64);
            let needed = predicted_rounds(t as f64 * delta, (delta - 1.0) / 2.0, sigma_at(n));
            assert!(needed <= 4, "t={t}, N={n}: need {needed} rounds");
            // (b) at the boundary: at most one extra round analytically.
            let nb = t * t + 2 * t + 1;
            let db = 1.0 + 1.0 / (3.0 * (nb + t) as f64);
            let needed_b = predicted_rounds(t as f64 * db, (db - 1.0) / 2.0, sigma_at(nb));
            assert!(needed_b <= 5, "t={t}, N={nb}: need {needed_b} rounds");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_target() {
        let _ = predicted_rounds(1.0, 0.0, 2);
    }
}
