//! Crash-tolerant approximate agreement.
//!
//! The crash-fault analogue the related work builds on (\[14\] in the paper):
//! processes broadcast their values and move to the midpoint of the received
//! range each round. With only crash faults, values never leave the convex
//! hull of the inputs and the range halves per round once crashed processes
//! have stopped interfering (at most `t` rounds can be "spoiled", one per
//! crash). Used by baseline B1.

use crate::byzantine::AaMsg;
use opr_sim::{Actor, Inbox, Outbox};
use opr_types::{Rank, Round};

/// A correct crash-model AA process: midpoint-of-range iteration.
#[derive(Clone, Debug)]
pub struct CrashAa {
    rounds: u32,
    value: Rank,
    done: bool,
}

impl CrashAa {
    /// Creates a process with initial `value` running `rounds` rounds.
    pub fn new(rounds: u32, value: Rank) -> Self {
        CrashAa {
            rounds,
            value,
            done: rounds == 0,
        }
    }

    /// The current value.
    pub fn value(&self) -> Rank {
        self.value
    }
}

impl Actor for CrashAa {
    type Msg = AaMsg;
    type Output = Rank;

    fn send(&mut self, _round: Round) -> Outbox<AaMsg> {
        if self.done {
            Outbox::Silent
        } else {
            Outbox::Broadcast(AaMsg(self.value))
        }
    }

    fn deliver(&mut self, round: Round, inbox: Inbox<AaMsg>) {
        if self.done {
            return;
        }
        let mut lo = self.value;
        let mut hi = self.value;
        for (_, AaMsg(v)) in inbox.messages() {
            lo = lo.min(*v);
            hi = hi.max(*v);
        }
        self.value = lo.midpoint(hi);
        if round.number() >= self.rounds {
            self.done = true;
        }
    }

    fn output(&self) -> Option<Rank> {
        self.done.then_some(self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::spread;
    use opr_sim::{Network, Topology};

    /// A process that crashes permanently after `alive_rounds` sends.
    struct Crasher {
        inner: CrashAa,
        alive_rounds: u32,
    }
    impl Actor for Crasher {
        type Msg = AaMsg;
        type Output = Rank;
        fn send(&mut self, round: Round) -> Outbox<AaMsg> {
            if round.number() > self.alive_rounds {
                Outbox::Silent
            } else {
                self.inner.send(round)
            }
        }
        fn deliver(&mut self, round: Round, inbox: Inbox<AaMsg>) {
            self.inner.deliver(round, inbox);
        }
        fn output(&self) -> Option<Rank> {
            self.inner.output()
        }
    }

    #[test]
    fn converges_without_faults() {
        let inputs = [0.0, 10.0, 4.0];
        let actors: Vec<Box<dyn Actor<Msg = AaMsg, Output = Rank>>> = inputs
            .iter()
            .map(|&v| {
                Box::new(CrashAa::new(8, Rank::new(v)))
                    as Box<dyn Actor<Msg = AaMsg, Output = Rank>>
            })
            .collect();
        let mut net = Network::new(actors, Topology::canonical(3));
        assert!(net.run(9).completed);
        let outs: Vec<Rank> = (0..3).map(|i| net.output_of(i).unwrap()).collect();
        assert!(spread(&outs) < 0.1, "spread {}", spread(&outs));
        for o in outs {
            assert!(o.value() >= 0.0 && o.value() <= 10.0, "hull violated: {o}");
        }
    }

    #[test]
    fn survives_a_mid_run_crash() {
        let inputs = [0.0, 10.0, 4.0, 6.0];
        let mut actors: Vec<Box<dyn Actor<Msg = AaMsg, Output = Rank>>> = Vec::new();
        actors.push(Box::new(Crasher {
            inner: CrashAa::new(10, Rank::new(inputs[0])),
            alive_rounds: 2,
        }));
        for &v in &inputs[1..] {
            actors.push(Box::new(CrashAa::new(10, Rank::new(v))));
        }
        let correct = vec![false, true, true, true];
        let mut net = Network::with_faults(actors, correct, Topology::canonical(4));
        assert!(net.run(11).completed);
        let outs: Vec<Rank> = (1..4).map(|i| net.output_of(i).unwrap()).collect();
        assert!(spread(&outs) < 0.2, "spread {}", spread(&outs));
        for o in outs {
            assert!(o.value() >= 0.0 && o.value() <= 10.0);
        }
    }

    #[test]
    fn zero_rounds_is_identity() {
        let aa = CrashAa::new(0, Rank::new(3.5));
        assert_eq!(aa.output(), Some(Rank::new(3.5)));
    }
}
