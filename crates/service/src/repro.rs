//! Replayable service repro files (`service-repro.json`).
//!
//! A service failure is fully determined by its [`ServiceSpec`] — the
//! engine configuration, the workload schedule and the dispatch
//! parallelism — so the repro file is just the spec plus the verdict digest
//! observed at capture time. Replaying re-runs the spec and re-judges the
//! ledger with the service oracle suite; the digest must reproduce.

use crate::config::{ServiceConfig, ServiceError};
use crate::driver::{ServiceReport, ServiceSpec};
use crate::oracle::{judge_ledger, ServiceViolation};
use opr_chaos::json::Json;
use opr_chaos::repro::{parse_adversary, parse_regime, regime_label};
use opr_transport::BackendKind;
use opr_types::SystemConfig;
use opr_workload::ServiceWorkload;
use std::fmt;

/// Format version written into every file (bump on breaking changes).
pub const SERVICE_REPRO_VERSION: u64 = 1;

/// A replayable service failure record.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ServiceRepro {
    /// The spec that showed the failure.
    pub spec: ServiceSpec,
    /// The campaign seed the spec was drawn under (0 for hand-written
    /// files).
    pub campaign_seed: u64,
    /// The index of the failing spec within that campaign.
    pub run_index: usize,
}

/// Why a service repro file could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceReproError(String);

impl fmt::Display for ServiceReproError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "service repro file: {}", self.0)
    }
}

impl std::error::Error for ServiceReproError {}

fn bad(msg: impl Into<String>) -> ServiceReproError {
    ServiceReproError(msg.into())
}

fn field_u64(doc: &Json, key: &str) -> Result<u64, ServiceReproError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| bad(format!("missing or non-integer field '{key}'")))
}

fn field_usize(doc: &Json, key: &str) -> Result<usize, ServiceReproError> {
    doc.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| bad(format!("missing or non-integer field '{key}'")))
}

fn field_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, ServiceReproError> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| bad(format!("missing or non-string field '{key}'")))
}

impl ServiceRepro {
    /// Renders the repro as pretty-printed JSON (the `service-repro.json`
    /// payload).
    pub fn to_json(&self) -> String {
        let s = &self.spec.service;
        let w = &self.spec.workload;
        Json::Obj(vec![
            ("version".into(), Json::UInt(SERVICE_REPRO_VERSION)),
            ("campaign_seed".into(), Json::UInt(self.campaign_seed)),
            ("run_index".into(), Json::UInt(self.run_index as u64)),
            ("jobs".into(), Json::UInt(self.spec.jobs as u64)),
            (
                "service".into(),
                Json::Obj(vec![
                    ("shards".into(), Json::UInt(s.shards as u64)),
                    ("n".into(), Json::UInt(s.epoch_cfg.n() as u64)),
                    ("t".into(), Json::UInt(s.epoch_cfg.t() as u64)),
                    ("regime".into(), Json::Str(regime_label(s.regime).into())),
                    ("byzantine".into(), Json::UInt(s.byzantine as u64)),
                    ("adversary".into(), Json::Str(s.adversary.label().into())),
                    ("backend".into(), Json::Str(s.backend.label().into())),
                    ("queue_capacity".into(), Json::UInt(s.queue_capacity as u64)),
                    ("shard_span".into(), Json::UInt(s.shard_span)),
                    ("seed".into(), Json::UInt(s.seed)),
                ]),
            ),
            (
                "workload".into(),
                Json::Obj(vec![
                    ("clients".into(), Json::UInt(w.clients)),
                    ("epochs".into(), Json::UInt(w.epochs)),
                    (
                        "arrivals_per_epoch".into(),
                        Json::UInt(w.arrivals_per_epoch as u64),
                    ),
                    ("max_hold".into(), Json::UInt(w.max_hold)),
                    ("seed".into(), Json::UInt(w.seed)),
                ]),
            ),
        ])
        .render()
    }

    /// Decodes a repro file.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceReproError`] on malformed JSON, an unknown version,
    /// or unknown labels.
    pub fn from_json(text: &str) -> Result<ServiceRepro, ServiceReproError> {
        let doc = Json::parse(text).map_err(|e| bad(e.to_string()))?;
        let version = field_u64(&doc, "version")?;
        if version != SERVICE_REPRO_VERSION {
            return Err(bad(format!(
                "unsupported version {version} (this build reads {SERVICE_REPRO_VERSION})"
            )));
        }
        let s = doc.get("service").ok_or_else(|| bad("missing service"))?;
        let w = doc.get("workload").ok_or_else(|| bad("missing workload"))?;
        let epoch_cfg = SystemConfig::new(field_usize(s, "n")?, field_usize(s, "t")?)
            .map_err(|e| bad(e.to_string()))?;
        let service = ServiceConfig {
            shards: field_usize(s, "shards")?,
            epoch_cfg,
            regime: parse_regime(field_str(s, "regime")?)
                .ok_or_else(|| bad("unknown regime label"))?,
            byzantine: field_usize(s, "byzantine")?,
            adversary: parse_adversary(field_str(s, "adversary")?)
                .ok_or_else(|| bad("unknown adversary label"))?,
            backend: BackendKind::parse(field_str(s, "backend")?)
                .ok_or_else(|| bad("unknown backend label"))?,
            queue_capacity: field_usize(s, "queue_capacity")?,
            shard_span: field_u64(s, "shard_span")?,
            seed: field_u64(s, "seed")?,
        };
        let workload = ServiceWorkload {
            clients: field_u64(w, "clients")?,
            epochs: field_u64(w, "epochs")?,
            arrivals_per_epoch: field_usize(w, "arrivals_per_epoch")?,
            max_hold: field_u64(w, "max_hold")?,
            seed: field_u64(w, "seed")?,
        };
        Ok(ServiceRepro {
            spec: ServiceSpec {
                service,
                workload,
                jobs: field_usize(&doc, "jobs")?,
            },
            campaign_seed: field_u64(&doc, "campaign_seed")?,
            run_index: field_u64(&doc, "run_index")? as usize,
        })
    }

    /// Re-runs the spec and re-judges the ledger with the service oracle
    /// suite. Deterministic: the same file always yields the same report
    /// and violations.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] when the spec itself fails to run.
    #[allow(clippy::type_complexity)]
    pub fn replay(
        &self,
    ) -> Result<(ServiceReport, Vec<(&'static str, ServiceViolation)>), ServiceError> {
        let report = self.spec.run()?;
        let violations = judge_ledger(&self.spec.service, &report.ledger);
        Ok((report, violations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opr_adversary::AdversarySpec;
    use opr_types::Regime;

    fn sample() -> ServiceRepro {
        ServiceRepro {
            spec: ServiceSpec {
                service: ServiceConfig {
                    shards: 2,
                    epoch_cfg: SystemConfig::new(7, 2).unwrap(),
                    regime: Regime::LogTime,
                    byzantine: 1,
                    adversary: AdversarySpec::RankSkew,
                    backend: BackendKind::Threaded,
                    queue_capacity: 32,
                    shard_span: 16,
                    seed: 99,
                },
                workload: ServiceWorkload {
                    clients: 40,
                    epochs: 6,
                    arrivals_per_epoch: 5,
                    max_hold: 2,
                    seed: 7,
                },
                jobs: 4,
            },
            campaign_seed: 11,
            run_index: 3,
        }
    }

    #[test]
    fn repro_round_trips_through_json() {
        let repro = sample();
        let text = repro.to_json();
        assert_eq!(ServiceRepro::from_json(&text).unwrap(), repro, "{text}");
    }

    #[test]
    fn replay_is_deterministic_and_clean_on_a_healthy_spec() {
        let repro = sample();
        let (first, violations) = repro.replay().unwrap();
        let (second, _) = repro.replay().unwrap();
        assert_eq!(first, second);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(first.grants > 0);
    }

    #[test]
    fn bad_files_are_rejected_with_reasons() {
        for (text, needle) in [
            ("{", "json error"),
            (r#"{"version": 99}"#, "version"),
            (
                r#"{"version": 1, "campaign_seed": 0, "run_index": 0, "jobs": 1,
                   "service": {"shards": 1, "n": 7, "t": 2, "regime": "sideways",
                               "byzantine": 0, "adversary": "silent", "backend": "sim",
                               "queue_capacity": 8, "shard_span": 16, "seed": 0},
                   "workload": {"clients": 10, "epochs": 2, "arrivals_per_epoch": 3,
                                "max_hold": 1, "seed": 0}}"#,
                "regime",
            ),
        ] {
            let err = ServiceRepro::from_json(text).unwrap_err();
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
