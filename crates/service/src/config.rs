//! Service-level configuration: shard layout, per-epoch protocol shape,
//! admission-queue bounds, and the seed discipline that keeps every epoch
//! replayable.

use opr_adversary::AdversarySpec;
use opr_transport::BackendKind;
use opr_types::{ConfigError, Regime, RenamingError, SystemConfig};
use opr_workload::ClientId;
use std::fmt;

/// Why the service could not be configured or an epoch could not run.
#[derive(Clone, Debug, PartialEq)]
pub enum ServiceError {
    /// `shards == 0` — the engine needs at least one namespace shard.
    NoShards,
    /// `queue_capacity == 0` — the admission queue must admit something.
    ZeroQueueCapacity,
    /// More Byzantine actors per instance than the fault bound `t`.
    TooManyByzantine {
        /// Requested Byzantine actors per epoch instance.
        byzantine: usize,
        /// The configured fault bound.
        t: usize,
    },
    /// A shard's name range is smaller than one epoch's grant capacity, so
    /// a full epoch could never be granted even with an empty shard.
    ShardSpanTooSmall {
        /// The configured span.
        span: u64,
        /// The per-epoch grant capacity it must at least cover.
        capacity: usize,
    },
    /// The per-epoch `(N, t)` does not support the chosen regime.
    Config(ConfigError),
    /// An epoch's protocol instance failed — with in-budget silent-or-worse
    /// adversaries this indicates a harness bug, so it is an error, not a
    /// degradation.
    Protocol(RenamingError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::NoShards => write!(f, "service needs at least one shard"),
            ServiceError::ZeroQueueCapacity => write!(f, "admission queue capacity must be ≥ 1"),
            ServiceError::TooManyByzantine { byzantine, t } => {
                write!(
                    f,
                    "{byzantine} Byzantine actors per instance exceeds t = {t}"
                )
            }
            ServiceError::ShardSpanTooSmall { span, capacity } => write!(
                f,
                "shard span {span} cannot hold one epoch's {capacity} grants"
            ),
            ServiceError::Config(e) => write!(f, "{e}"),
            ServiceError::Protocol(e) => write!(f, "epoch protocol instance failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ConfigError> for ServiceError {
    fn from(e: ConfigError) -> Self {
        ServiceError::Config(e)
    }
}

impl From<RenamingError> for ServiceError {
    fn from(e: RenamingError) -> Self {
        ServiceError::Protocol(e)
    }
}

/// Static configuration of a renaming service instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ServiceConfig {
    /// Number of namespace shards. Each shard owns a disjoint name range
    /// and runs independent protocol instances.
    pub shards: usize,
    /// The `(N, t)` shape of every per-epoch protocol instance.
    pub epoch_cfg: SystemConfig,
    /// Which of the paper's algorithms each instance runs.
    pub regime: Regime,
    /// Byzantine actors placed in every instance (`≤ t`). The remaining
    /// `N − byzantine` slots carry client requests (padded with filler ids
    /// when demand is short).
    pub byzantine: usize,
    /// Byzantine strategy of the faulty actors.
    pub adversary: AdversarySpec,
    /// Execution substrate for the protocol instances.
    pub backend: BackendKind,
    /// Admission-queue bound: operations beyond this are rejected with
    /// backpressure instead of queueing unboundedly.
    pub queue_capacity: usize,
    /// Names per shard: shard `s` owns `[s·span + 1, (s+1)·span]`.
    pub shard_span: u64,
    /// Service seed; every `(epoch, shard)` protocol instance derives its
    /// run seed from it via [`epoch_seed`].
    pub seed: u64,
}

impl ServiceConfig {
    /// Checks the configuration invariants.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] when a bound is violated; see the variant
    /// docs for the exact conditions.
    pub fn validate(&self) -> Result<(), ServiceError> {
        if self.shards == 0 {
            return Err(ServiceError::NoShards);
        }
        if self.queue_capacity == 0 {
            return Err(ServiceError::ZeroQueueCapacity);
        }
        if self.byzantine > self.epoch_cfg.t() {
            return Err(ServiceError::TooManyByzantine {
                byzantine: self.byzantine,
                t: self.epoch_cfg.t(),
            });
        }
        self.epoch_cfg.require(self.regime)?;
        let capacity = self.epoch_capacity();
        if self.shard_span < capacity as u64 {
            return Err(ServiceError::ShardSpanTooSmall {
                span: self.shard_span,
                capacity,
            });
        }
        Ok(())
    }

    /// How many client requests one epoch instance can carry per shard:
    /// the correct slots of the protocol instance.
    pub fn epoch_capacity(&self) -> usize {
        self.epoch_cfg.n() - self.byzantine
    }

    /// The inclusive name range shard `s` owns.
    pub fn shard_range(&self, shard: usize) -> (u64, u64) {
        let base = shard as u64 * self.shard_span;
        (base + 1, base + self.shard_span)
    }

    /// Which shard serves `client` — a stable hash, independent of the
    /// service seed so a client's shard never moves.
    pub fn shard_of(&self, client: ClientId) -> usize {
        (mix(0x0073_6861_7264, client.raw()) % self.shards as u64) as usize
    }
}

/// The run seed of the protocol instance shard `shard` executes in `epoch`,
/// derived from the service seed. Public so reduction gates can run the
/// identical instance directly through `RenamingRun`.
pub fn epoch_seed(service_seed: u64, epoch: u64, shard: usize) -> u64 {
    mix(mix(service_seed, epoch), shard as u64)
}

/// splitmix64-style mixing, self-contained for stability (same construction
/// as `opr_core::fault_placement`).
fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(stream)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ServiceConfig {
        ServiceConfig {
            shards: 4,
            epoch_cfg: SystemConfig::new(7, 2).unwrap(),
            regime: Regime::LogTime,
            byzantine: 2,
            adversary: AdversarySpec::Silent,
            backend: BackendKind::Sim,
            queue_capacity: 64,
            shard_span: 32,
            seed: 1,
        }
    }

    #[test]
    fn valid_config_passes() {
        base().validate().unwrap();
        assert_eq!(base().epoch_capacity(), 5);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = base();
        c.shards = 0;
        assert_eq!(c.validate(), Err(ServiceError::NoShards));
        c = base();
        c.queue_capacity = 0;
        assert_eq!(c.validate(), Err(ServiceError::ZeroQueueCapacity));
        c = base();
        c.byzantine = 3;
        assert!(matches!(
            c.validate(),
            Err(ServiceError::TooManyByzantine { .. })
        ));
        c = base();
        c.shard_span = 4;
        assert!(matches!(
            c.validate(),
            Err(ServiceError::ShardSpanTooSmall { .. })
        ));
        c = base();
        c.regime = Regime::TwoStep; // 7 ≤ 2t² + t = 10
        assert!(matches!(c.validate(), Err(ServiceError::Config(_))));
    }

    #[test]
    fn shard_ranges_are_disjoint_and_cover() {
        let c = base();
        let mut hi_prev = 0;
        for s in 0..c.shards {
            let (lo, hi) = c.shard_range(s);
            assert_eq!(lo, hi_prev + 1);
            assert_eq!(hi - lo + 1, c.shard_span);
            hi_prev = hi;
        }
    }

    #[test]
    fn shard_mapping_is_stable_and_spread() {
        let c = base();
        let shards: Vec<usize> = (0..100).map(|k| c.shard_of(ClientId::new(k))).collect();
        assert_eq!(
            shards,
            (0..100)
                .map(|k| c.shard_of(ClientId::new(k)))
                .collect::<Vec<_>>()
        );
        for s in 0..c.shards {
            assert!(shards.contains(&s), "shard {s} never hit");
        }
    }

    #[test]
    fn epoch_seeds_differ_across_epochs_and_shards() {
        assert_ne!(epoch_seed(1, 0, 0), epoch_seed(1, 1, 0));
        assert_ne!(epoch_seed(1, 0, 0), epoch_seed(1, 0, 1));
        assert_eq!(epoch_seed(1, 5, 3), epoch_seed(1, 5, 3));
    }
}
