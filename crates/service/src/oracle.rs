//! Service-level oracles: judge a grant/release ledger against the
//! guarantees the service inherits from the paper and adds on top.
//!
//! The protocol-level chaos oracles (`opr-chaos`) judge one instance from
//! its diagnosed run; these judge the *service* from its ledger — across
//! epochs, shards and recycling. The two suites compose: every epoch's
//! instance is the paper's protocol (covered there), and the ledger oracles
//! check that the multiplexing layer never breaks uniqueness, order or
//! namespace discipline while names cycle through the pools.

use crate::config::ServiceConfig;
use crate::engine::{Grant, LedgerEvent};
use opr_workload::ClientId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A ledger-level guarantee violation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServiceViolation {
    /// Two grants in the same epoch and shard assigned the same name.
    DuplicateNameInEpoch {
        /// The epoch.
        epoch: u64,
        /// The shard.
        shard: usize,
        /// The doubly-assigned name.
        name: u64,
    },
    /// Within one epoch and shard, a smaller original id received a larger
    /// name (order preservation broken).
    OrderInversion {
        /// The epoch.
        epoch: u64,
        /// The shard.
        shard: usize,
        /// The smaller original id of the inverted pair.
        smaller: u64,
        /// The larger original id of the inverted pair.
        larger: u64,
    },
    /// A grant named outside its shard's range.
    NameOutOfShardRange {
        /// The epoch.
        epoch: u64,
        /// The shard.
        shard: usize,
        /// The out-of-range name.
        name: u64,
    },
    /// A name was granted while still live from an earlier grant (recycling
    /// broke cross-epoch uniqueness).
    NameLiveTwice {
        /// The epoch of the second grant.
        epoch: u64,
        /// The shard.
        shard: usize,
        /// The name that was live twice.
        name: u64,
        /// The client already holding the name.
        holder: ClientId,
    },
    /// A release of a name that was not live.
    ReleaseOfFreeName {
        /// The epoch of the bogus release.
        epoch: u64,
        /// The shard.
        shard: usize,
        /// The name that was not live.
        name: u64,
    },
}

impl fmt::Display for ServiceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ServiceViolation::DuplicateNameInEpoch { epoch, shard, name } => {
                write!(f, "epoch {epoch} shard {shard}: name {name} granted twice")
            }
            ServiceViolation::OrderInversion {
                epoch,
                shard,
                smaller,
                larger,
            } => write!(
                f,
                "epoch {epoch} shard {shard}: originals {smaller} < {larger} got inverted names"
            ),
            ServiceViolation::NameOutOfShardRange { epoch, shard, name } => {
                write!(
                    f,
                    "epoch {epoch} shard {shard}: name {name} outside shard range"
                )
            }
            ServiceViolation::NameLiveTwice {
                epoch,
                shard,
                name,
                holder,
            } => write!(
                f,
                "epoch {epoch} shard {shard}: name {name} granted while live (held by {holder})"
            ),
            ServiceViolation::ReleaseOfFreeName { epoch, shard, name } => {
                write!(
                    f,
                    "epoch {epoch} shard {shard}: release of free name {name}"
                )
            }
        }
    }
}

/// A ledger-level oracle: a named check over the full chronological ledger.
pub trait ServiceOracle {
    /// A short stable name for reports.
    fn name(&self) -> &'static str;
    /// Judges the ledger; an empty vector means the guarantee held.
    fn check(&self, cfg: &ServiceConfig, ledger: &[LedgerEvent]) -> Vec<ServiceViolation>;
}

/// Groups an epoch's grants by `(epoch, shard)`.
fn grants_by_cell(ledger: &[LedgerEvent]) -> BTreeMap<(u64, usize), Vec<&Grant>> {
    let mut cells: BTreeMap<(u64, usize), Vec<&Grant>> = BTreeMap::new();
    for event in ledger {
        if let LedgerEvent::Grant(grant) = event {
            cells
                .entry((grant.epoch, grant.shard))
                .or_default()
                .push(grant);
        }
    }
    cells
}

/// Within one epoch and shard, every granted name is unique.
pub struct EpochUniqueness;

impl ServiceOracle for EpochUniqueness {
    fn name(&self) -> &'static str {
        "epoch-uniqueness"
    }

    fn check(&self, _cfg: &ServiceConfig, ledger: &[LedgerEvent]) -> Vec<ServiceViolation> {
        let mut violations = Vec::new();
        for ((epoch, shard), grants) in grants_by_cell(ledger) {
            let mut seen = BTreeSet::new();
            for grant in grants {
                if !seen.insert(grant.name) {
                    violations.push(ServiceViolation::DuplicateNameInEpoch {
                        epoch,
                        shard,
                        name: grant.name,
                    });
                }
            }
        }
        violations
    }
}

/// Within one epoch and shard, service names (and the protocol names under
/// them) are ordered like the original ids — the paper's order preservation
/// survives pool compaction.
pub struct EpochOrder;

impl ServiceOracle for EpochOrder {
    fn name(&self) -> &'static str {
        "epoch-order"
    }

    fn check(&self, _cfg: &ServiceConfig, ledger: &[LedgerEvent]) -> Vec<ServiceViolation> {
        let mut violations = Vec::new();
        for ((epoch, shard), mut grants) in grants_by_cell(ledger) {
            grants.sort_by_key(|g| g.original);
            for pair in grants.windows(2) {
                let ordered =
                    pair[0].name < pair[1].name && pair[0].protocol_name < pair[1].protocol_name;
                if !ordered {
                    violations.push(ServiceViolation::OrderInversion {
                        epoch,
                        shard,
                        smaller: pair[0].original.raw(),
                        larger: pair[1].original.raw(),
                    });
                }
            }
        }
        violations
    }
}

/// Every grant's name lies inside its shard's disjoint range.
pub struct ShardRange;

impl ServiceOracle for ShardRange {
    fn name(&self) -> &'static str {
        "shard-range"
    }

    fn check(&self, cfg: &ServiceConfig, ledger: &[LedgerEvent]) -> Vec<ServiceViolation> {
        let mut violations = Vec::new();
        for event in ledger {
            if let LedgerEvent::Grant(grant) = event {
                let (lo, hi) = cfg.shard_range(grant.shard);
                if grant.name < lo || grant.name > hi {
                    violations.push(ServiceViolation::NameOutOfShardRange {
                        epoch: grant.epoch,
                        shard: grant.shard,
                        name: grant.name,
                    });
                }
            }
        }
        violations
    }
}

/// Across the whole run, no name is ever live twice: a chronological sweep
/// of the ledger in which every grant must target a non-live name and every
/// release must target a live one — the recycling guarantee.
pub struct CrossEpochUniqueness;

impl ServiceOracle for CrossEpochUniqueness {
    fn name(&self) -> &'static str {
        "cross-epoch-uniqueness"
    }

    fn check(&self, _cfg: &ServiceConfig, ledger: &[LedgerEvent]) -> Vec<ServiceViolation> {
        let mut violations = Vec::new();
        let mut live: BTreeMap<(usize, u64), ClientId> = BTreeMap::new();
        for event in ledger {
            match *event {
                LedgerEvent::Grant(grant) => {
                    if let Some(&holder) = live.get(&(grant.shard, grant.name)) {
                        violations.push(ServiceViolation::NameLiveTwice {
                            epoch: grant.epoch,
                            shard: grant.shard,
                            name: grant.name,
                            holder,
                        });
                    } else {
                        live.insert((grant.shard, grant.name), grant.client);
                    }
                }
                LedgerEvent::Release {
                    epoch, shard, name, ..
                } => {
                    if live.remove(&(shard, name)).is_none() {
                        violations.push(ServiceViolation::ReleaseOfFreeName { epoch, shard, name });
                    }
                }
            }
        }
        violations
    }
}

/// The full service oracle suite.
pub fn service_suite() -> Vec<Box<dyn ServiceOracle>> {
    vec![
        Box::new(EpochUniqueness),
        Box::new(EpochOrder),
        Box::new(ShardRange),
        Box::new(CrossEpochUniqueness),
    ]
}

/// How close the ledger came to exhausting a shard's namespace: the
/// minimum, over all shards that ever granted, of `shard span − peak live
/// names in that shard`. Zero means some shard was completely full at its
/// peak; negative is impossible while [`CrossEpochUniqueness`] holds.
/// Returns `None` for a ledger with no grants (nothing was exercised).
///
/// This is the service-layer analogue of the protocol oracles' margin:
/// a distance-to-violation number the adversary search can minimize.
pub fn ledger_margin(cfg: &ServiceConfig, ledger: &[LedgerEvent]) -> Option<i64> {
    let mut live: BTreeMap<usize, i64> = BTreeMap::new();
    let mut peak: BTreeMap<usize, i64> = BTreeMap::new();
    for event in ledger {
        match *event {
            LedgerEvent::Grant(grant) => {
                let count = live.entry(grant.shard).or_insert(0);
                *count += 1;
                let best = peak.entry(grant.shard).or_insert(0);
                *best = (*best).max(*count);
            }
            LedgerEvent::Release { shard, .. } => {
                if let Some(count) = live.get_mut(&shard) {
                    *count -= 1;
                }
            }
        }
    }
    peak.iter()
        .map(|(&shard, &max_live)| {
            let (lo, hi) = cfg.shard_range(shard);
            (hi - lo + 1) as i64 - max_live
        })
        .min()
}

/// Runs every oracle in [`service_suite`] and collects all violations,
/// tagged with the oracle that raised them.
pub fn judge_ledger(
    cfg: &ServiceConfig,
    ledger: &[LedgerEvent],
) -> Vec<(&'static str, ServiceViolation)> {
    service_suite()
        .iter()
        .flat_map(|oracle| {
            let name = oracle.name();
            oracle
                .check(cfg, ledger)
                .into_iter()
                .map(move |violation| (name, violation))
        })
        .collect()
}
