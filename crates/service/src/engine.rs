//! The multi-tenant epoch engine: admission queue, sharded free pools,
//! per-epoch protocol instances and the cross-epoch grant ledger.
//!
//! One engine multiplexes many renaming instances over time (epochs) and
//! space (shards). Within an epoch each non-empty shard runs one full
//! protocol instance — the paper's one-shot guarantees (uniqueness, order
//! preservation, tight namespace) hold per instance — and the engine maps
//! the instance's protocol names onto the shard's free pool, preserving
//! order. Released names return to the pool, so a name can serve many
//! clients over the run while never being live twice; the chronological
//! [`LedgerEvent`] stream is the auditable record the service oracles judge.

use crate::config::{epoch_seed, ServiceConfig, ServiceError};
use opr_exec::RunPool;
use opr_metrics::{
    labeled, Counter, EpochSummary, Gauge, Histogram, MetricsRegistry, SharedFlightRecorder,
};
use opr_obs::SharedSpanLog;
use opr_types::{NewName, OriginalId, RenamingError, RenamingOutcome};
use opr_workload::{ClientId, RenamingRun};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::time::Instant;

/// A client-facing operation submitted to the admission queue.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServiceOp {
    /// Acquire a service name, presenting an original id to the protocol.
    Acquire {
        /// The requesting client.
        client: ClientId,
        /// The original id it presents.
        original: OriginalId,
    },
    /// Release the name the client currently holds (or cancel its queued
    /// acquire).
    Release {
        /// The releasing client.
        client: ClientId,
    },
}

impl ServiceOp {
    /// The client behind the operation.
    pub fn client(&self) -> ClientId {
        match *self {
            ServiceOp::Acquire { client, .. } | ServiceOp::Release { client } => client,
        }
    }
}

/// Admission-side counters: what the queue accepted, rejected and cancelled.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct AdmissionStats {
    /// Acquires that entered the queue.
    pub accepted_acquires: u64,
    /// Releases that entered the queue.
    pub accepted_releases: u64,
    /// Operations bounced because the queue was full (backpressure).
    pub rejected_queue_full: u64,
    /// Acquires dropped at drain time because the client already holds a
    /// grant or already has an acquire pending.
    pub rejected_duplicate: u64,
    /// Releases dropped at drain time because the client neither holds a
    /// grant nor has an acquire pending.
    pub rejected_unknown_release: u64,
    /// Releases that arrived before the grant and cancelled the client's
    /// queued acquire instead of freeing a name.
    pub cancelled_pending: u64,
}

/// One service-level name grant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Grant {
    /// The epoch the grant was published in.
    pub epoch: u64,
    /// The shard that served it.
    pub shard: usize,
    /// The granted client.
    pub client: ClientId,
    /// The original id the client presented.
    pub original: OriginalId,
    /// The raw protocol output before pool compaction — what a direct
    /// `RenamingRun` on the same instance decides.
    pub protocol_name: NewName,
    /// The service-level name: the k-th smallest protocol name of the epoch
    /// maps to the k-th smallest free name of the shard, so protocol order
    /// is preserved while gaps are compacted onto the recycled pool.
    pub name: u64,
}

/// One entry of the chronological service ledger.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LedgerEvent {
    /// A name went live.
    Grant(Grant),
    /// A name returned to its shard's free pool.
    Release {
        /// The epoch the release was processed in.
        epoch: u64,
        /// The shard the name belongs to.
        shard: usize,
        /// The client that held it.
        client: ClientId,
        /// The freed service-level name.
        name: u64,
    },
}

/// Per-epoch outcome counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EpochStats {
    /// The epoch index.
    pub epoch: u64,
    /// Names granted this epoch.
    pub grants: u64,
    /// Names released this epoch.
    pub releases: u64,
    /// Protocol instances executed (one per non-empty shard).
    pub protocol_runs: u64,
    /// Shards skipped because they had no admitted demand (empty-epoch
    /// skip: no protocol instance is spent on an idle shard).
    pub skipped_shards: u64,
    /// Requests pushed back to the head of their shard's backlog — batch
    /// collisions on the same original id, or (defensively) an instance
    /// that left a request undecided.
    pub deferred: u64,
    /// Grants of a name that had already been granted (and released) in an
    /// earlier epoch — the cross-epoch recycling the free pool exists for.
    pub recycled: u64,
}

/// A shard: a disjoint name range with its own free pool, backlog of
/// admitted acquires, and live-grant table.
struct Shard {
    /// Names currently free, ascending.
    free: BTreeSet<u64>,
    /// Admitted acquires waiting for an epoch slot, FIFO.
    backlog: VecDeque<(ClientId, OriginalId)>,
    /// Clients present in `backlog` (duplicate-acquire detection).
    backlog_clients: BTreeSet<ClientId>,
    /// Live grants: client → (original, service name).
    live: BTreeMap<ClientId, (OriginalId, u64)>,
    /// Every name granted at least once — a grant whose insert here fails is
    /// a cross-epoch recycle.
    granted_ever: BTreeSet<u64>,
}

impl Shard {
    fn new(range: (u64, u64)) -> Self {
        Shard {
            free: (range.0..=range.1).collect(),
            backlog: VecDeque::new(),
            backlog_clients: BTreeSet::new(),
            live: BTreeMap::new(),
            granted_ever: BTreeSet::new(),
        }
    }
}

/// Pre-created metric handles for the engine's hot paths (wall plane; the
/// deterministic plane is `ServiceReport::metrics_snapshot`).
struct EngineMetrics {
    /// The registry itself, passed down into protocol instances so backend
    /// round histograms land in the same store.
    registry: MetricsRegistry,
    queue_depth: Gauge,
    backlog: Gauge,
    live: Gauge,
    free_names: Vec<Gauge>,
    shard_grants: Vec<Counter>,
    grants: Counter,
    releases: Counter,
    recycled: Counter,
    deferred: Counter,
    epochs: Counter,
    protocol_runs: Counter,
    epoch_latency_us: Histogram,
    epoch_grants: Histogram,
    protocol_ns: Histogram,
}

impl EngineMetrics {
    fn new(registry: &MetricsRegistry, shards: usize) -> Self {
        EngineMetrics {
            registry: registry.clone(),
            queue_depth: registry.gauge("opr_service_queue_depth"),
            backlog: registry.gauge("opr_service_backlog"),
            live: registry.gauge("opr_service_live_names"),
            free_names: (0..shards)
                .map(|k| {
                    registry.gauge(&labeled(
                        "opr_service_free_names",
                        &[("shard", &k.to_string())],
                    ))
                })
                .collect(),
            shard_grants: (0..shards)
                .map(|k| {
                    registry.counter(&labeled(
                        "opr_service_grants_total",
                        &[("shard", &k.to_string())],
                    ))
                })
                .collect(),
            grants: registry.counter("opr_service_grants_total"),
            releases: registry.counter("opr_service_releases_total"),
            recycled: registry.counter("opr_service_recycled_total"),
            deferred: registry.counter("opr_service_deferred_total"),
            epochs: registry.counter("opr_service_epochs_total"),
            protocol_runs: registry.counter("opr_service_protocol_runs_total"),
            epoch_latency_us: registry.histogram("opr_service_epoch_latency_us"),
            epoch_grants: registry.histogram("opr_service_epoch_grants"),
            protocol_ns: registry.histogram("opr_service_protocol_ns"),
        }
    }
}

/// The long-running service engine. Drive it by [`ServiceEngine::submit`]ing
/// operations and calling [`ServiceEngine::run_epoch`]; read the results off
/// [`ServiceEngine::ledger`].
pub struct ServiceEngine {
    cfg: ServiceConfig,
    shards: Vec<Shard>,
    /// The bounded admission queue, shared across shards.
    queue: VecDeque<ServiceOp>,
    admission: AdmissionStats,
    ledger: Vec<LedgerEvent>,
    epoch_stats: Vec<EpochStats>,
    epoch: u64,
    spans: Option<SharedSpanLog>,
    metrics: Option<EngineMetrics>,
    flight: Option<SharedFlightRecorder>,
}

impl ServiceEngine {
    /// Builds an engine with full free pools and an empty queue.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] when the configuration is invalid.
    pub fn new(cfg: ServiceConfig) -> Result<Self, ServiceError> {
        cfg.validate()?;
        Ok(ServiceEngine {
            cfg,
            shards: (0..cfg.shards)
                .map(|s| Shard::new(cfg.shard_range(s)))
                .collect(),
            queue: VecDeque::new(),
            admission: AdmissionStats::default(),
            ledger: Vec::new(),
            epoch_stats: Vec::new(),
            epoch: 0,
            spans: None,
            metrics: None,
            flight: None,
        })
    }

    /// Attaches a wall-clock span log; the engine records per-epoch
    /// admission/grant spans and per-shard protocol spans (observability
    /// only, never part of the deterministic result).
    pub fn with_spans(mut self, spans: SharedSpanLog) -> Self {
        self.spans = Some(spans);
        self
    }

    /// Attaches a live metrics registry (wall plane): queue-depth/backlog
    /// gauges, per-epoch latency and grant histograms, per-shard grant
    /// counters and free-pool occupancy, cross-epoch recycle counts, and
    /// per-round backend histograms from the protocol instances themselves.
    /// Without this call the engine touches no atomics at all.
    pub fn with_metrics(mut self, registry: &MetricsRegistry) -> Self {
        self.metrics = Some(EngineMetrics::new(registry, self.cfg.shards));
        self
    }

    /// Attaches a flight recorder; the engine pushes one [`EpochSummary`]
    /// per epoch so a later oracle violation or panic can dump the run-up.
    pub fn with_flight(mut self, flight: SharedFlightRecorder) -> Self {
        self.flight = Some(flight);
        self
    }

    /// Offers an operation to the admission queue. Returns `false` (and
    /// counts backpressure) when the queue is at capacity; the caller owns
    /// the retry policy.
    pub fn submit(&mut self, op: ServiceOp) -> bool {
        if self.queue.len() >= self.cfg.queue_capacity {
            self.admission.rejected_queue_full += 1;
            return false;
        }
        match op {
            ServiceOp::Acquire { .. } => self.admission.accepted_acquires += 1,
            ServiceOp::Release { .. } => self.admission.accepted_releases += 1,
        }
        self.queue.push_back(op);
        if let Some(m) = &self.metrics {
            m.queue_depth.set(self.queue.len() as i64);
        }
        true
    }

    /// Runs one epoch: drains the admission queue into the shards, runs one
    /// protocol instance per non-empty shard (dispatched over `pool`), and
    /// publishes the grants. Returns the epoch's counters.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Protocol`] when an instance fails — with an
    /// in-budget adversary this indicates a harness bug, so the epoch is not
    /// silently absorbed.
    ///
    /// # Panics
    ///
    /// Re-raises panics from protocol instances executed on the pool.
    pub fn run_epoch(&mut self, pool: &RunPool) -> Result<EpochStats, ServiceError> {
        let epoch = self.epoch;
        let mut stats = EpochStats {
            epoch,
            ..EpochStats::default()
        };
        let epoch_start = (self.metrics.is_some() || self.flight.is_some()).then(Instant::now);
        let queue_depth_at_start = self.queue.len();

        let admission_start = Instant::now();
        self.drain_queue(epoch, &mut stats);
        self.record_span("epoch admission", epoch, admission_start);

        let (batches, outcomes) = self.run_shard_instances(pool, epoch, &mut stats)?;

        let grant_start = Instant::now();
        for (shard_index, batch, outcome) in batches
            .into_iter()
            .zip(outcomes)
            .map(|((s, b), o)| (s, b, o))
        {
            self.publish_grants(epoch, shard_index, batch, &outcome?, &mut stats);
        }
        self.record_span("epoch grants", epoch, grant_start);

        self.observe_epoch(&stats, epoch_start, queue_depth_at_start);
        self.epoch_stats.push(stats);
        self.epoch += 1;
        Ok(stats)
    }

    /// Publishes the epoch's wall-plane observables: gauge refresh, counter
    /// and histogram updates, and the flight-recorder summary. A no-op when
    /// neither a registry nor a recorder is attached.
    fn observe_epoch(
        &mut self,
        stats: &EpochStats,
        epoch_start: Option<Instant>,
        queue_depth_at_start: usize,
    ) {
        if self.metrics.is_none() && self.flight.is_none() {
            return;
        }
        let latency_micros = epoch_start.map_or(0, |s| s.elapsed().as_micros() as u64);
        if let Some(m) = &self.metrics {
            m.epochs.inc();
            m.grants.add(stats.grants);
            m.releases.add(stats.releases);
            m.recycled.add(stats.recycled);
            m.deferred.add(stats.deferred);
            m.protocol_runs.add(stats.protocol_runs);
            m.epoch_grants.record(stats.grants);
            m.epoch_latency_us.record(latency_micros);
            m.queue_depth.set(self.queue.len() as i64);
            m.backlog.set(self.backlog_len() as i64);
            m.live.set(self.live_count() as i64);
            for (k, gauge) in m.free_names.iter().enumerate() {
                gauge.set(self.shards[k].free.len() as i64);
            }
        }
        if let Some(flight) = &self.flight {
            let free_names: usize = self.shards.iter().map(|s| s.free.len()).sum();
            flight
                .lock()
                .expect("flight recorder poisoned")
                .push(EpochSummary {
                    epoch: stats.epoch,
                    grants: stats.grants,
                    releases: stats.releases,
                    deferred: stats.deferred,
                    recycled: stats.recycled,
                    queue_depth: queue_depth_at_start as u64,
                    backlog: self.backlog_len() as u64,
                    free_names: free_names as u64,
                    live_names: self.live_count() as u64,
                    protocol_runs: stats.protocol_runs,
                    latency_micros,
                });
        }
    }

    /// Applies every queued operation to its shard's state.
    fn drain_queue(&mut self, epoch: u64, stats: &mut EpochStats) {
        while let Some(op) = self.queue.pop_front() {
            let shard_index = self.cfg.shard_of(op.client());
            let shard = &mut self.shards[shard_index];
            match op {
                ServiceOp::Acquire { client, original } => {
                    if shard.live.contains_key(&client) || shard.backlog_clients.contains(&client) {
                        self.admission.rejected_duplicate += 1;
                    } else {
                        shard.backlog.push_back((client, original));
                        shard.backlog_clients.insert(client);
                    }
                }
                ServiceOp::Release { client } => {
                    if let Some((_, name)) = shard.live.remove(&client) {
                        shard.free.insert(name);
                        self.ledger.push(LedgerEvent::Release {
                            epoch,
                            shard: shard_index,
                            client,
                            name,
                        });
                        stats.releases += 1;
                    } else if shard.backlog_clients.remove(&client) {
                        shard.backlog.retain(|&(c, _)| c != client);
                        self.admission.cancelled_pending += 1;
                    } else {
                        self.admission.rejected_unknown_release += 1;
                    }
                }
            }
        }
    }

    /// Forms one batch per shard and runs the non-empty ones as protocol
    /// instances on the pool. Returns the batches (with their shard index)
    /// and the instance outcomes in the same order.
    #[allow(clippy::type_complexity)]
    fn run_shard_instances(
        &mut self,
        pool: &RunPool,
        epoch: u64,
        stats: &mut EpochStats,
    ) -> Result<
        (
            Vec<(usize, Vec<(ClientId, OriginalId)>)>,
            Vec<Result<RenamingOutcome, RenamingError>>,
        ),
        ServiceError,
    > {
        let mut batches = Vec::new();
        for shard_index in 0..self.shards.len() {
            let batch = self.form_batch(shard_index, stats);
            if batch.is_empty() {
                stats.skipped_shards += 1;
            } else {
                batches.push((shard_index, batch));
            }
        }

        let cfg = self.cfg;
        let tasks: Vec<_> = batches
            .iter()
            .map(|(shard_index, batch)| {
                let shard_index = *shard_index;
                let originals: Vec<OriginalId> = batch.iter().map(|&(_, o)| o).collect();
                let spans = self.spans.clone();
                let registry = self.metrics.as_ref().map(|m| m.registry.clone());
                let protocol_ns = self.metrics.as_ref().map(|m| m.protocol_ns.clone());
                move || {
                    let start = Instant::now();
                    let result = run_instance(&cfg, epoch, shard_index, &originals, registry);
                    if let Some(hist) = protocol_ns {
                        hist.record(start.elapsed().as_nanos() as u64);
                    }
                    if let Some(log) = spans {
                        log.lock().expect("span log poisoned").record_detailed(
                            "epoch protocol",
                            epoch,
                            shard_index as u64,
                            start,
                        );
                    }
                    result
                }
            })
            .collect();
        stats.protocol_runs = tasks.len() as u64;
        let outcomes = pool
            .run_batch(tasks)
            .into_iter()
            .map(|task| match task {
                Ok(outcome) => outcome,
                // A panicking instance is a harness bug; surface it exactly
                // like `run_grid` does instead of absorbing it into a slot.
                Err(panic) => std::panic::panic_any(panic.message),
            })
            .collect();
        Ok((batches, outcomes))
    }

    /// Takes up to `min(backlog, epoch capacity, free pool)` requests off a
    /// shard's backlog, FIFO, skipping (and re-queueing in order) requests
    /// whose original id already appears in the batch — a protocol instance
    /// needs distinct ids.
    fn form_batch(
        &mut self,
        shard_index: usize,
        stats: &mut EpochStats,
    ) -> Vec<(ClientId, OriginalId)> {
        let shard = &mut self.shards[shard_index];
        let limit = self
            .cfg
            .epoch_capacity()
            .min(shard.free.len())
            .min(shard.backlog.len());
        let mut batch: Vec<(ClientId, OriginalId)> = Vec::with_capacity(limit);
        let mut originals = BTreeSet::new();
        let mut deferred = VecDeque::new();
        while batch.len() < limit {
            let Some((client, original)) = shard.backlog.pop_front() else {
                break;
            };
            if originals.insert(original) {
                batch.push((client, original));
            } else {
                deferred.push_back((client, original));
                stats.deferred += 1;
            }
        }
        // Deferred collisions go back to the head, before the untouched
        // backlog tail, so overall FIFO order is preserved.
        for entry in deferred.into_iter().rev() {
            shard.backlog.push_front(entry);
        }
        // Batched clients leave the backlog set; they re-enter `live` at
        // grant time (or the backlog, if the instance leaves them undecided).
        for &(client, _) in &batch {
            shard.backlog_clients.remove(&client);
        }
        batch
    }

    /// Maps an instance's protocol names onto the shard's free pool and
    /// publishes the grants: k-th smallest protocol name → k-th smallest
    /// free name. Order preservation of the instance makes the per-original
    /// order of both sides identical.
    fn publish_grants(
        &mut self,
        epoch: u64,
        shard_index: usize,
        batch: Vec<(ClientId, OriginalId)>,
        outcome: &RenamingOutcome,
        stats: &mut EpochStats,
    ) {
        // Decided batch entries ordered by protocol name. Order preservation
        // means sorting by name and sorting by original agree; sorting by
        // the raw name keeps the compaction monotone even if an instance
        // (buggily) inverted a pair — the oracle then reports the inversion
        // on the protocol names rather than it being masked by the pool.
        let mut decided: Vec<(ClientId, OriginalId, NewName)> = Vec::with_capacity(batch.len());
        let shard = &mut self.shards[shard_index];
        for (client, original) in batch {
            match outcome.name_of(original) {
                Some(name) => decided.push((client, original, name)),
                None => {
                    // Defensive: an undecided correct slot would be a
                    // protocol bug; re-queue the request so demand is not
                    // silently lost, and let the grant-count gates notice.
                    shard.backlog.push_front((client, original));
                    shard.backlog_clients.insert(client);
                    stats.deferred += 1;
                }
            }
        }
        decided.sort_by_key(|&(_, _, name)| name);
        let names: Vec<u64> = shard.free.iter().take(decided.len()).copied().collect();
        let mut granted_here = 0u64;
        for ((client, original, protocol_name), name) in decided.into_iter().zip(names) {
            shard.free.remove(&name);
            shard.live.insert(client, (original, name));
            if !shard.granted_ever.insert(name) {
                stats.recycled += 1;
            }
            self.ledger.push(LedgerEvent::Grant(Grant {
                epoch,
                shard: shard_index,
                client,
                original,
                protocol_name,
                name,
            }));
            stats.grants += 1;
            granted_here += 1;
        }
        if let Some(m) = &self.metrics {
            m.shard_grants[shard_index].add(granted_here);
        }
    }

    fn record_span(&self, name: &'static str, index: u64, start: Instant) {
        if let Some(log) = &self.spans {
            log.lock()
                .expect("span log poisoned")
                .record_indexed(name, index, start);
        }
    }

    /// The configuration the engine runs.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// The chronological grant/release ledger so far.
    pub fn ledger(&self) -> &[LedgerEvent] {
        &self.ledger
    }

    /// Admission counters so far.
    pub fn admission(&self) -> AdmissionStats {
        self.admission
    }

    /// Per-epoch counters so far.
    pub fn epoch_stats(&self) -> &[EpochStats] {
        &self.epoch_stats
    }

    /// Epochs executed so far.
    pub fn epochs_run(&self) -> u64 {
        self.epoch
    }

    /// Currently live grants across all shards.
    pub fn live_count(&self) -> usize {
        self.shards.iter().map(|s| s.live.len()).sum()
    }

    /// Currently free names in `shard`'s pool.
    pub fn free_count(&self, shard: usize) -> usize {
        self.shards[shard].free.len()
    }

    /// Requests admitted but not yet granted, across all shards.
    pub fn backlog_len(&self) -> usize {
        self.shards.iter().map(|s| s.backlog.len()).sum()
    }
}

/// Runs one shard-epoch protocol instance: the batch's original ids plus
/// filler ids above them (so order preservation keeps every filler name
/// above every real name), under the configured adversary.
fn run_instance(
    cfg: &ServiceConfig,
    epoch: u64,
    shard: usize,
    originals: &[OriginalId],
    metrics: Option<MetricsRegistry>,
) -> Result<RenamingOutcome, RenamingError> {
    let max_real = originals.iter().map(|o| o.raw()).max().unwrap_or(0);
    let fillers = cfg.epoch_capacity() - originals.len();
    let ids: Vec<OriginalId> = originals
        .iter()
        .copied()
        .chain((1..=fillers as u64).map(|i| OriginalId::new(max_real + i)))
        .collect();
    let mut run = RenamingRun::builder(cfg.epoch_cfg, cfg.regime)
        .correct_ids(ids)
        .adversary(cfg.adversary, cfg.byzantine)
        .seed(epoch_seed(cfg.seed, epoch, shard))
        .backend(cfg.backend);
    if let Some(registry) = metrics {
        run = run.metrics(registry);
    }
    let run = run.run()?;
    Ok(run.outcome)
}
