#![warn(missing_docs)]
//! Renaming-as-a-service: a multi-tenant epoch engine over the paper's
//! one-shot protocol.
//!
//! The source paper solves *one-shot* order-preserving renaming: a fixed
//! set of processes runs one synchronous instance and halts. This crate
//! generalizes it to a long-running *service* (the direction of Chlebus &
//! Kowalski's exclusive-selection framing): clients acquire and release
//! names over time, and the engine multiplexes thousands of protocol
//! instances while preserving the paper's guarantees within every instance
//! and adding cross-epoch guarantees on top.
//!
//! # Architecture
//!
//! * **Admission queue** ([`ServiceEngine::submit`]) — a bounded FIFO of
//!   [`ServiceOp`]s; a full queue rejects with backpressure
//!   ([`AdmissionStats::rejected_queue_full`]) instead of growing.
//! * **Sharded namespaces** ([`ServiceConfig::shards`]) — each shard owns a
//!   disjoint name range and its own free pool/backlog/live table; clients
//!   hash to shards stably.
//! * **Epoch batching** ([`ServiceEngine::run_epoch`]) — per epoch, every
//!   non-empty shard runs one protocol instance (batch originals plus
//!   filler ids up to the instance width) via `opr_workload::RenamingRun`,
//!   dispatched over an `opr_exec::RunPool`; protocol names map
//!   order-preservingly onto the shard's free pool (k-th smallest protocol
//!   name → k-th smallest free name).
//! * **Name recycling** — released names return to the free pool and serve
//!   later clients; the chronological [`LedgerEvent`] stream is judged by
//!   the [`oracle`] suite, including cross-epoch uniqueness (no name live
//!   twice, ever).
//!
//! Everything is deterministic: a [`ServiceSpec`] (configuration +
//! [`ServiceWorkload`](opr_workload::ServiceWorkload) + jobs) replays to a
//! bit-identical [`ServiceReport`] across `--jobs` counts and backends,
//! which is what the soak and chaos gates compare. [`repro`] round-trips a
//! spec through `service-repro.json` for replayable failures.

pub mod config;
pub mod driver;
pub mod engine;
pub mod oracle;
pub mod repro;

pub use config::{epoch_seed, ServiceConfig, ServiceError};
pub use driver::{ServiceObs, ServiceReport, ServiceSpec};
pub use engine::{AdmissionStats, EpochStats, Grant, LedgerEvent, ServiceEngine, ServiceOp};
pub use oracle::{
    judge_ledger, ledger_margin, service_suite, CrossEpochUniqueness, EpochOrder, EpochUniqueness,
    ServiceOracle, ServiceViolation, ShardRange,
};
pub use repro::{ServiceRepro, ServiceReproError, SERVICE_REPRO_VERSION};

#[cfg(test)]
mod tests {
    use super::*;
    use opr_adversary::AdversarySpec;
    use opr_exec::RunPool;
    use opr_transport::BackendKind;
    use opr_types::{OriginalId, Regime, SystemConfig};
    use opr_workload::ClientId;

    fn small_cfg() -> ServiceConfig {
        ServiceConfig {
            shards: 1,
            epoch_cfg: SystemConfig::new(4, 1).unwrap(),
            regime: Regime::LogTime,
            byzantine: 1,
            adversary: AdversarySpec::Silent,
            backend: BackendKind::Sim,
            queue_capacity: 4,
            shard_span: 8,
            seed: 5,
        }
    }

    fn acquire(client: u64, original: u64) -> ServiceOp {
        ServiceOp::Acquire {
            client: ClientId::new(client),
            original: OriginalId::new(original),
        }
    }

    fn release(client: u64) -> ServiceOp {
        ServiceOp::Release {
            client: ClientId::new(client),
        }
    }

    #[test]
    fn full_queue_applies_backpressure() {
        let mut engine = ServiceEngine::new(small_cfg()).unwrap();
        for i in 0..4 {
            assert!(engine.submit(acquire(i, 10 + i)));
        }
        assert!(!engine.submit(acquire(99, 999)));
        assert_eq!(engine.admission().rejected_queue_full, 1);
        assert_eq!(engine.admission().accepted_acquires, 4);
        // Draining the queue in an epoch restores capacity.
        engine.run_epoch(&RunPool::serial()).unwrap();
        assert!(engine.submit(acquire(99, 999)));
    }

    #[test]
    fn release_before_grant_cancels_the_queued_acquire() {
        let mut engine = ServiceEngine::new(small_cfg()).unwrap();
        engine.submit(acquire(1, 100));
        engine.submit(release(1));
        let stats = engine.run_epoch(&RunPool::serial()).unwrap();
        assert_eq!(stats.grants, 0);
        assert_eq!(engine.admission().cancelled_pending, 1);
        assert_eq!(engine.live_count(), 0);
    }

    #[test]
    fn release_of_unknown_client_is_rejected() {
        let mut engine = ServiceEngine::new(small_cfg()).unwrap();
        engine.submit(release(42));
        engine.run_epoch(&RunPool::serial()).unwrap();
        assert_eq!(engine.admission().rejected_unknown_release, 1);
        assert!(engine.ledger().is_empty());
    }

    #[test]
    fn duplicate_acquire_from_same_client_is_rejected() {
        let mut engine = ServiceEngine::new(small_cfg()).unwrap();
        // Same epoch: second acquire collides with the queued one.
        engine.submit(acquire(1, 100));
        engine.submit(acquire(1, 100));
        engine.run_epoch(&RunPool::serial()).unwrap();
        assert_eq!(engine.admission().rejected_duplicate, 1);
        // Later epoch: collides with the live grant.
        engine.submit(acquire(1, 100));
        engine.run_epoch(&RunPool::serial()).unwrap();
        assert_eq!(engine.admission().rejected_duplicate, 2);
        assert_eq!(engine.live_count(), 1);
    }

    #[test]
    fn empty_epoch_skips_the_protocol_instance() {
        let mut engine = ServiceEngine::new(small_cfg()).unwrap();
        let stats = engine.run_epoch(&RunPool::serial()).unwrap();
        assert_eq!(stats.protocol_runs, 0);
        assert_eq!(stats.skipped_shards, 1);
        assert_eq!(stats.grants, 0);
        assert_eq!(engine.epochs_run(), 1);
    }

    #[test]
    fn grants_are_ordered_and_recycling_reuses_names() {
        let mut engine = ServiceEngine::new(small_cfg()).unwrap();
        engine.submit(acquire(1, 300));
        engine.submit(acquire(2, 100));
        engine.submit(acquire(3, 200));
        engine.run_epoch(&RunPool::serial()).unwrap();
        let grants: Vec<Grant> = engine
            .ledger()
            .iter()
            .filter_map(|e| match e {
                LedgerEvent::Grant(g) => Some(*g),
                _ => None,
            })
            .collect();
        assert_eq!(grants.len(), 3);
        // Fresh pool: compaction grants names 1..=3, ordered by original id.
        let mut by_original = grants;
        by_original.sort_by_key(|g| g.original);
        assert_eq!(
            by_original.iter().map(|g| g.name).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        // Release the middle name and re-acquire from a new client: the
        // freed name is the smallest free, so it is granted again.
        engine.submit(release(2));
        engine.submit(acquire(4, 150));
        engine.run_epoch(&RunPool::serial()).unwrap();
        let last = engine.ledger().last().unwrap();
        match last {
            LedgerEvent::Grant(g) => {
                assert_eq!(g.client, ClientId::new(4));
                assert_eq!(g.name, 1, "smallest free name is recycled");
            }
            other => panic!("expected a grant, got {other:?}"),
        }
        assert!(judge_ledger(engine.config(), engine.ledger()).is_empty());
    }

    #[test]
    fn backlog_beyond_capacity_carries_over_to_the_next_epoch() {
        let mut cfg = small_cfg();
        cfg.queue_capacity = 16;
        let mut engine = ServiceEngine::new(cfg).unwrap();
        // Capacity per epoch is n − byzantine = 3; admit 5.
        for i in 0..5 {
            assert!(engine.submit(acquire(i, 100 + i)));
        }
        let first = engine.run_epoch(&RunPool::serial()).unwrap();
        assert_eq!(first.grants, 3);
        assert_eq!(engine.backlog_len(), 2);
        let second = engine.run_epoch(&RunPool::serial()).unwrap();
        assert_eq!(second.grants, 2);
        assert_eq!(engine.backlog_len(), 0);
        assert!(judge_ledger(engine.config(), engine.ledger()).is_empty());
    }

    #[test]
    fn batch_collision_on_original_id_is_deferred_not_lost() {
        let mut engine = ServiceEngine::new(small_cfg()).unwrap();
        // Two clients present the same original id: only one can enter an
        // instance, the other is granted in the following epoch.
        engine.submit(acquire(1, 100));
        engine.submit(acquire(2, 100));
        let first = engine.run_epoch(&RunPool::serial()).unwrap();
        assert_eq!(first.grants, 1);
        assert_eq!(first.deferred, 1);
        let second = engine.run_epoch(&RunPool::serial()).unwrap();
        assert_eq!(second.grants, 1);
        assert_eq!(engine.live_count(), 2);
        assert!(judge_ledger(engine.config(), engine.ledger()).is_empty());
    }

    #[test]
    fn spans_record_admission_protocol_and_grant_phases() {
        let log = opr_obs::shared_span_log();
        let mut engine = ServiceEngine::new(small_cfg())
            .unwrap()
            .with_spans(log.clone());
        engine.submit(acquire(1, 100));
        engine.run_epoch(&RunPool::serial()).unwrap();
        let names: Vec<String> = log
            .lock()
            .unwrap()
            .spans()
            .iter()
            .map(|s| s.label())
            .collect();
        assert!(
            names.contains(&"epoch admission 0".to_string()),
            "{names:?}"
        );
        assert!(
            names.contains(&"epoch protocol 0 (0)".to_string()),
            "{names:?}"
        );
        assert!(names.contains(&"epoch grants 0".to_string()), "{names:?}");
    }

    #[test]
    fn metrics_and_flight_observe_epochs_without_changing_results() {
        use opr_metrics::{shared_flight_recorder, MetricsRegistry};
        let registry = MetricsRegistry::new();
        let flight = shared_flight_recorder(8);
        let mut engine = ServiceEngine::new(small_cfg())
            .unwrap()
            .with_metrics(&registry)
            .with_flight(flight.clone());
        engine.submit(acquire(1, 100));
        engine.submit(acquire(2, 200));
        engine.run_epoch(&RunPool::serial()).unwrap();
        // Release + re-acquire: the recycle shows up in stats and metrics.
        engine.submit(release(1));
        engine.submit(acquire(3, 150));
        let stats = engine.run_epoch(&RunPool::serial()).unwrap();
        assert_eq!(stats.recycled, 1);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("opr_service_grants_total"), 3);
        assert_eq!(snap.counter("opr_service_recycled_total"), 1);
        assert_eq!(snap.counter("opr_service_epochs_total"), 2);
        assert_eq!(snap.gauge("opr_service_live_names"), Some(2));
        let hist = snap.histogram("opr_service_epoch_latency_us").unwrap();
        assert_eq!(hist.count, 2);
        assert!(
            snap.histogram("opr_round_ns{backend=\"sim\"}").is_some(),
            "backend round histogram should flow through instances: {:?}",
            snap.histograms.keys().collect::<Vec<_>>()
        );
        let summaries = flight.lock().unwrap().summaries();
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[1].recycled, 1);
        assert_eq!(summaries[1].live_names, 2);
    }

    #[test]
    fn ledger_margin_tracks_peak_shard_pressure() {
        use opr_types::NewName;
        let cfg = small_cfg(); // one shard, span 8 → names 1..=8
        assert_eq!(ledger_margin(&cfg, &[]), None, "no grants, no margin");
        let grant = |epoch, original: u64, name| {
            LedgerEvent::Grant(Grant {
                epoch,
                shard: 0,
                client: ClientId::new(original),
                original: OriginalId::new(original),
                protocol_name: NewName::new(original as i64),
                name,
            })
        };
        let release = |epoch, client: u64, name| LedgerEvent::Release {
            epoch,
            shard: 0,
            client: ClientId::new(client),
            name,
        };
        // Peak of 3 live names against a span of 8 → margin 5, and the
        // margin tracks the *peak*, not the final live count.
        let ledger = vec![
            grant(0, 1, 1),
            grant(0, 2, 2),
            grant(0, 3, 3),
            release(1, 1, 1),
            release(1, 2, 2),
        ];
        assert_eq!(ledger_margin(&cfg, &ledger), Some(5));
        // A completely full shard sits exactly on the edge.
        let full: Vec<LedgerEvent> = (1..=8).map(|i| grant(0, i, i)).collect();
        assert_eq!(ledger_margin(&cfg, &full), Some(0));
    }

    #[test]
    fn oracles_flag_a_corrupted_ledger() {
        use opr_types::NewName;
        let cfg = small_cfg();
        let grant = |epoch, original: u64, protocol: i64, name| {
            LedgerEvent::Grant(Grant {
                epoch,
                shard: 0,
                client: ClientId::new(original),
                original: OriginalId::new(original),
                protocol_name: NewName::new(protocol),
                name,
            })
        };
        // Duplicate in-epoch name, inverted order, out-of-range name,
        // grant-while-live and release-of-free, all in one ledger.
        let ledger = vec![
            grant(0, 10, 1, 2),
            grant(0, 20, 2, 2),  // duplicate name + live twice
            grant(0, 30, 3, 1),  // order inversion vs original 20
            grant(1, 40, 1, 99), // outside shard span 8
            LedgerEvent::Release {
                epoch: 1,
                shard: 0,
                client: ClientId::new(7),
                name: 5,
            }, // never granted
        ];
        let verdicts = judge_ledger(&cfg, &ledger);
        let names: Vec<&str> = verdicts.iter().map(|(n, _)| *n).collect();
        for expected in [
            "epoch-uniqueness",
            "epoch-order",
            "shard-range",
            "cross-epoch-uniqueness",
        ] {
            assert!(names.contains(&expected), "{expected} missing: {names:?}");
        }
    }
}
