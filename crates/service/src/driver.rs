//! The seeded service driver: runs a [`ServiceEngine`] against a
//! [`ServiceWorkload`] for its full schedule and folds the outcome into a
//! comparable [`ServiceReport`].
//!
//! The driver is the replayability boundary: a [`ServiceSpec`] is a pure
//! value, and `run()` is a deterministic function of it — same spec, same
//! report, bit for bit, across `jobs` counts and backends. Everything the
//! soak/reduction/chaos gates compare is in the report; wall-clock spans are
//! deliberately outside it.

use crate::config::{ServiceConfig, ServiceError};
use crate::engine::{AdmissionStats, EpochStats, LedgerEvent, ServiceEngine, ServiceOp};
use opr_exec::RunPool;
use opr_metrics::{
    labeled, render_dashboard, MetricsRegistry, MetricsSnapshot, SharedFlightRecorder,
};
use opr_obs::SharedSpanLog;
use opr_workload::{ClientId, ServiceWorkload};
use std::collections::BTreeMap;

/// A complete, replayable service experiment: engine configuration, demand
/// schedule, and dispatch parallelism.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ServiceSpec {
    /// Engine configuration.
    pub service: ServiceConfig,
    /// Open-loop demand schedule.
    pub workload: ServiceWorkload,
    /// `RunPool` parallelism for shard dispatch (`≤ 1` runs inline).
    pub jobs: usize,
}

/// What a full service run produced — the deterministic result the gates
/// compare (spans and wall time are intentionally absent).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ServiceReport {
    /// Epochs executed.
    pub epochs: u64,
    /// Total names granted.
    pub grants: u64,
    /// Total names released back to the pools.
    pub releases: u64,
    /// Grants of a name that had already served an earlier client — the
    /// recycling traffic (0 means no name was ever reused).
    pub recycled: u64,
    /// Admission counters.
    pub admission: AdmissionStats,
    /// The full chronological ledger.
    pub ledger: Vec<LedgerEvent>,
    /// Per-epoch counters.
    pub epoch_stats: Vec<EpochStats>,
}

/// Wall-plane attachments for a service run: spans, a live metrics
/// registry, a flight recorder and an optional periodic dashboard. All
/// optional; `ServiceObs::default()` observes nothing and changes nothing.
#[derive(Clone, Default)]
pub struct ServiceObs {
    /// Wall-clock span log (engine + pool spans).
    pub spans: Option<SharedSpanLog>,
    /// Live metrics registry threaded through the engine, the pool, and
    /// every protocol instance's backend.
    pub metrics: Option<MetricsRegistry>,
    /// Flight recorder receiving one epoch summary per epoch.
    pub flight: Option<SharedFlightRecorder>,
    /// When `Some(n)` with an attached registry, print the ANSI dashboard
    /// to stderr every `n` epochs (a poor man's `--watch`).
    pub watch_every: Option<u64>,
}

impl ServiceObs {
    /// Observation bundle with only a span log attached (the pre-metrics
    /// entry point's behaviour).
    pub fn with_spans(spans: SharedSpanLog) -> Self {
        ServiceObs {
            spans: Some(spans),
            ..ServiceObs::default()
        }
    }
}

impl ServiceSpec {
    /// Runs the full schedule.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] on invalid configuration or a failed
    /// protocol instance.
    pub fn run(&self) -> Result<ServiceReport, ServiceError> {
        self.run_observed(&ServiceObs::default())
    }

    /// [`ServiceSpec::run`] with an optional wall-clock span log attached to
    /// both the engine (admission/protocol/grant spans) and the dispatch
    /// pool (stage spans).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] on invalid configuration or a failed
    /// protocol instance.
    pub fn run_with_spans(
        &self,
        spans: Option<SharedSpanLog>,
    ) -> Result<ServiceReport, ServiceError> {
        let obs = ServiceObs {
            spans,
            ..ServiceObs::default()
        };
        self.run_observed(&obs)
    }

    /// [`ServiceSpec::run`] with the full wall-plane observation bundle:
    /// spans, live metrics (engine gauges/histograms, pool queue-wait,
    /// per-round backend histograms), flight recorder, and an optional
    /// every-N-epochs dashboard on stderr. The returned report is
    /// bit-identical to an unobserved run.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] on invalid configuration or a failed
    /// protocol instance.
    pub fn run_observed(&self, obs: &ServiceObs) -> Result<ServiceReport, ServiceError> {
        let mut pool = RunPool::new(self.jobs);
        let mut engine = ServiceEngine::new(self.service)?;
        if let Some(log) = &obs.spans {
            pool = pool.with_spans(log.clone());
            engine = engine.with_spans(log.clone());
        }
        if let Some(registry) = &obs.metrics {
            pool = pool.with_metrics(registry);
            engine = engine.with_metrics(registry);
        }
        if let Some(flight) = &obs.flight {
            engine = engine.with_flight(flight.clone());
        }

        // Releases are materialized from observed grants: a client granted
        // in epoch `g` releases at the start of epoch `g + hold(client)`.
        // Holds are ≥ 1, so a release never races its own grant's epoch.
        let mut due_releases: BTreeMap<u64, Vec<ClientId>> = BTreeMap::new();
        let mut ledger_seen = 0usize;
        for epoch in 0..self.workload.epochs {
            for client in due_releases.remove(&epoch).unwrap_or_default() {
                // A full queue drops the release; the client simply holds
                // its name for the rest of the run (counted as
                // rejected_queue_full backpressure).
                engine.submit(ServiceOp::Release { client });
            }
            for arrival in self.workload.arrivals(epoch) {
                engine.submit(ServiceOp::Acquire {
                    client: arrival.client,
                    original: arrival.original,
                });
            }
            engine.run_epoch(&pool)?;
            if let (Some(every), Some(registry)) = (obs.watch_every, &obs.metrics) {
                if every > 0 && (epoch + 1) % every == 0 {
                    eprintln!(
                        "{}",
                        render_dashboard(
                            &format!("service epoch {epoch}"),
                            &registry.snapshot(),
                            true,
                        )
                    );
                }
            }
            for event in &engine.ledger()[ledger_seen..] {
                if let LedgerEvent::Grant(grant) = event {
                    let due = epoch + self.workload.hold_epochs(grant.client);
                    // Releases falling past the schedule are dropped: the
                    // run ends with those names still live.
                    if due < self.workload.epochs {
                        due_releases.entry(due).or_default().push(grant.client);
                    }
                }
            }
            ledger_seen = engine.ledger().len();
        }

        let ledger = engine.ledger().to_vec();
        let (mut grants, mut releases, mut recycled) = (0u64, 0u64, 0u64);
        let mut granted_before: BTreeMap<(usize, u64), bool> = BTreeMap::new();
        for event in &ledger {
            match event {
                LedgerEvent::Grant(grant) => {
                    grants += 1;
                    if granted_before
                        .insert((grant.shard, grant.name), true)
                        .is_some()
                    {
                        recycled += 1;
                    }
                }
                LedgerEvent::Release { .. } => releases += 1,
            }
        }
        Ok(ServiceReport {
            epochs: engine.epochs_run(),
            grants,
            releases,
            recycled,
            admission: engine.admission(),
            ledger,
            epoch_stats: engine.epoch_stats().to_vec(),
        })
    }
}

impl ServiceReport {
    /// Names granted per wall-clock second given an elapsed duration —
    /// the bench binary's headline metric.
    pub fn names_per_sec(&self, elapsed_secs: f64) -> f64 {
        if elapsed_secs <= 0.0 {
            return 0.0;
        }
        self.grants as f64 / elapsed_secs
    }

    /// Folds the report into the deterministic metrics plane: a pure
    /// function of the (deterministic) report, so it is bit-identical
    /// across backends and `jobs` counts and safe to pin in goldens.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.add_counter("opr_service_epochs_total", self.epochs);
        snap.add_counter("opr_service_grants_total", self.grants);
        snap.add_counter("opr_service_releases_total", self.releases);
        snap.add_counter("opr_service_recycled_total", self.recycled);
        snap.add_counter(
            labeled("opr_service_admission_total", &[("verdict", "accepted")]),
            self.admission.accepted_acquires + self.admission.accepted_releases,
        );
        snap.add_counter(
            labeled("opr_service_admission_total", &[("verdict", "rejected")]),
            self.admission.rejected_queue_full
                + self.admission.rejected_duplicate
                + self.admission.rejected_unknown_release,
        );
        snap.add_counter(
            "opr_service_cancelled_pending_total",
            self.admission.cancelled_pending,
        );
        let mut by_shard: BTreeMap<usize, u64> = BTreeMap::new();
        for event in &self.ledger {
            if let LedgerEvent::Grant(grant) = event {
                *by_shard.entry(grant.shard).or_default() += 1;
            }
        }
        for (shard, count) in by_shard {
            snap.add_counter(
                labeled("opr_service_grants_total", &[("shard", &shard.to_string())]),
                count,
            );
        }
        for stats in &self.epoch_stats {
            snap.record("opr_service_epoch_grants", stats.grants);
            snap.add_counter("opr_service_protocol_runs_total", stats.protocol_runs);
            snap.add_counter("opr_service_deferred_total", stats.deferred);
            snap.add_counter("opr_service_skipped_shards_total", stats.skipped_shards);
        }
        snap
    }
}
