//! The seeded service driver: runs a [`ServiceEngine`] against a
//! [`ServiceWorkload`] for its full schedule and folds the outcome into a
//! comparable [`ServiceReport`].
//!
//! The driver is the replayability boundary: a [`ServiceSpec`] is a pure
//! value, and `run()` is a deterministic function of it — same spec, same
//! report, bit for bit, across `jobs` counts and backends. Everything the
//! soak/reduction/chaos gates compare is in the report; wall-clock spans are
//! deliberately outside it.

use crate::config::{ServiceConfig, ServiceError};
use crate::engine::{AdmissionStats, EpochStats, LedgerEvent, ServiceEngine, ServiceOp};
use opr_exec::RunPool;
use opr_obs::SharedSpanLog;
use opr_workload::{ClientId, ServiceWorkload};
use std::collections::BTreeMap;

/// A complete, replayable service experiment: engine configuration, demand
/// schedule, and dispatch parallelism.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ServiceSpec {
    /// Engine configuration.
    pub service: ServiceConfig,
    /// Open-loop demand schedule.
    pub workload: ServiceWorkload,
    /// `RunPool` parallelism for shard dispatch (`≤ 1` runs inline).
    pub jobs: usize,
}

/// What a full service run produced — the deterministic result the gates
/// compare (spans and wall time are intentionally absent).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ServiceReport {
    /// Epochs executed.
    pub epochs: u64,
    /// Total names granted.
    pub grants: u64,
    /// Total names released back to the pools.
    pub releases: u64,
    /// Grants of a name that had already served an earlier client — the
    /// recycling traffic (0 means no name was ever reused).
    pub recycled: u64,
    /// Admission counters.
    pub admission: AdmissionStats,
    /// The full chronological ledger.
    pub ledger: Vec<LedgerEvent>,
    /// Per-epoch counters.
    pub epoch_stats: Vec<EpochStats>,
}

impl ServiceSpec {
    /// Runs the full schedule.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] on invalid configuration or a failed
    /// protocol instance.
    pub fn run(&self) -> Result<ServiceReport, ServiceError> {
        self.run_with_spans(None)
    }

    /// [`ServiceSpec::run`] with an optional wall-clock span log attached to
    /// both the engine (admission/protocol/grant spans) and the dispatch
    /// pool (stage spans).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] on invalid configuration or a failed
    /// protocol instance.
    pub fn run_with_spans(
        &self,
        spans: Option<SharedSpanLog>,
    ) -> Result<ServiceReport, ServiceError> {
        let mut pool = RunPool::new(self.jobs);
        let mut engine = ServiceEngine::new(self.service)?;
        if let Some(log) = spans {
            pool = pool.with_spans(log.clone());
            engine = engine.with_spans(log);
        }

        // Releases are materialized from observed grants: a client granted
        // in epoch `g` releases at the start of epoch `g + hold(client)`.
        // Holds are ≥ 1, so a release never races its own grant's epoch.
        let mut due_releases: BTreeMap<u64, Vec<ClientId>> = BTreeMap::new();
        let mut ledger_seen = 0usize;
        for epoch in 0..self.workload.epochs {
            for client in due_releases.remove(&epoch).unwrap_or_default() {
                // A full queue drops the release; the client simply holds
                // its name for the rest of the run (counted as
                // rejected_queue_full backpressure).
                engine.submit(ServiceOp::Release { client });
            }
            for arrival in self.workload.arrivals(epoch) {
                engine.submit(ServiceOp::Acquire {
                    client: arrival.client,
                    original: arrival.original,
                });
            }
            engine.run_epoch(&pool)?;
            for event in &engine.ledger()[ledger_seen..] {
                if let LedgerEvent::Grant(grant) = event {
                    let due = epoch + self.workload.hold_epochs(grant.client);
                    // Releases falling past the schedule are dropped: the
                    // run ends with those names still live.
                    if due < self.workload.epochs {
                        due_releases.entry(due).or_default().push(grant.client);
                    }
                }
            }
            ledger_seen = engine.ledger().len();
        }

        let ledger = engine.ledger().to_vec();
        let (mut grants, mut releases, mut recycled) = (0u64, 0u64, 0u64);
        let mut granted_before: BTreeMap<(usize, u64), bool> = BTreeMap::new();
        for event in &ledger {
            match event {
                LedgerEvent::Grant(grant) => {
                    grants += 1;
                    if granted_before
                        .insert((grant.shard, grant.name), true)
                        .is_some()
                    {
                        recycled += 1;
                    }
                }
                LedgerEvent::Release { .. } => releases += 1,
            }
        }
        Ok(ServiceReport {
            epochs: engine.epochs_run(),
            grants,
            releases,
            recycled,
            admission: engine.admission(),
            ledger,
            epoch_stats: engine.epoch_stats().to_vec(),
        })
    }
}

impl ServiceReport {
    /// Names granted per wall-clock second given an elapsed duration —
    /// the bench binary's headline metric.
    pub fn names_per_sec(&self, elapsed_secs: f64) -> f64 {
        if elapsed_secs <= 0.0 {
            return 0.0;
        }
        self.grants as f64 / elapsed_secs
    }
}
