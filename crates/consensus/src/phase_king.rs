//! Phase-king consensus over a vector of binary instances.

use opr_obs::{record_if, ProtocolEvent, SharedRecorder};
use opr_rbcast::{for_each_slot, IdInterner, WORD_BITS};
use opr_sim::{Actor, Inbox, Outbox, WireSize, COUNT_BITS, TAG_BITS};
use opr_types::Round;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;

/// Phase-king messages: the universal exchange and the king broadcast, each
/// carrying one bit per live instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConsensusMsg<V> {
    /// Odd rounds: every process's current preferences.
    Pref(BTreeMap<V, bool>),
    /// Even rounds: the phase king's preferences.
    King(BTreeMap<V, bool>),
}

impl<V: WireSize> WireSize for ConsensusMsg<V> {
    fn wire_bits(&self) -> u64 {
        let map = match self {
            ConsensusMsg::Pref(m) | ConsensusMsg::King(m) => m,
        };
        TAG_BITS + COUNT_BITS + map.keys().map(|v| v.wire_bits() + 1).sum::<u64>()
    }
}

/// A correct phase-king participant deciding a set of values: one binary
/// consensus instance per key, all advancing in lock-step.
///
/// Instances are created lazily: a key first seen in another process's
/// message joins with preference `false`. This keeps the key universe open
/// (processes need not agree beforehand on which candidate ids exist) while
/// preserving validity for keys all correct processes start with.
///
/// Decides after `2(t + 1)` rounds with the set of keys whose instance
/// decided `true`.
#[derive(Clone, Debug)]
pub struct VectorPhaseKing<V> {
    n: usize,
    t: usize,
    /// This process's position in the (globally consistent, granted) king
    /// rotation: process `k` is king of phase `k + 1`.
    my_index: usize,
    /// `king_links[k]` = the local link label on which messages from the
    /// process at rotation position `k` arrive (self-loop for `my_index`).
    /// This encodes the granted global numbering: without it a Byzantine
    /// process could impersonate the king (see the module docs).
    king_links: Vec<opr_types::LinkId>,
    prefs: BTreeMap<V, bool>,
    /// Key ⇄ dense-slot registry: keys repeat every round, so counting runs
    /// over flat slot-indexed arrays instead of per-(key, sender) B-tree
    /// probes. Local to this participant — slots never reach the wire.
    slots: IdInterner<V>,
    /// Majority-count per slot from the last universal exchange (`0` ⇒ the
    /// key was not voted on that round).
    counts: Vec<u32>,
    decided: Option<BTreeSet<V>>,
    recorder: Option<SharedRecorder>,
}

impl<V: Ord + Clone + Debug> VectorPhaseKing<V> {
    /// Creates a participant with initial `true` preferences for
    /// `initial_true`, the given rotation position, and the link map that
    /// identifies each rotation position's incoming link (`king_links[k]` is
    /// the link messages from rotation position `k` arrive on).
    ///
    /// # Panics
    ///
    /// Panics unless `n ≥ 4t + 2` (the resilience this two-round phase king
    /// needs), `my_index < n`, and `king_links` covers all `n` positions.
    pub fn new(
        n: usize,
        t: usize,
        my_index: usize,
        king_links: Vec<opr_types::LinkId>,
        initial_true: BTreeSet<V>,
    ) -> Self {
        assert!(
            n >= 4 * t + 2,
            "phase king needs N ≥ 4t + 2 (got N={n}, t={t})"
        );
        assert!(my_index < n, "rotation position out of range");
        assert_eq!(king_links.len(), n, "king_links must cover all positions");
        VectorPhaseKing {
            n,
            t,
            my_index,
            king_links,
            prefs: initial_true.into_iter().map(|v| (v, true)).collect(),
            slots: IdInterner::new(),
            counts: Vec::new(),
            decided: None,
            recorder: None,
        }
    }

    /// Attaches a telemetry recorder emitting one
    /// [`ProtocolEvent::KingRound`] per king round with the king's link,
    /// whether it spoke, and how many instances adopted its bit.
    pub fn attach_recorder(&mut self, recorder: SharedRecorder) {
        self.recorder = Some(recorder);
    }

    /// Total rounds until decision: `2(t + 1)`.
    pub fn total_rounds(n_unused: usize, t: usize) -> u32 {
        let _ = n_unused;
        2 * (t as u32 + 1)
    }

    fn phase_of(round: Round) -> usize {
        ((round.number() - 1) / 2 + 1) as usize
    }

    fn is_exchange_round(round: Round) -> bool {
        round.number() % 2 == 1
    }

    /// Delivers one round of messages from any borrowed `(link, &msg)` view.
    ///
    /// This is the zero-copy twin of the [`Actor::deliver`] impl: embedding
    /// protocols (e.g. the B2 baseline, whose wire type wraps
    /// [`ConsensusMsg`]) pass a `filter_map` view straight over their own
    /// inbox instead of materializing an owned `Inbox<ConsensusMsg<V>>` per
    /// receiver per round.
    pub fn deliver_borrowed<'a, I>(&mut self, round: Round, inbox: I)
    where
        V: 'a,
        I: IntoIterator<Item = (opr_types::LinkId, &'a ConsensusMsg<V>)>,
    {
        if self.decided.is_some() {
            return;
        }
        if Self::is_exchange_round(round) {
            // Universal exchange: adopt the majority per key; remember its
            // support count for the king round's threshold test. Keys are
            // interned to dense slots (stable across rounds), so the
            // per-sender inner loop is one intern + two array bumps.
            let mut yes: Vec<u32> = vec![0; self.slots.len()];
            let mut voted: Vec<u64> = Vec::new();
            for (_, msg) in inbox {
                if let ConsensusMsg::Pref(map) = msg {
                    for (v, &b) in map {
                        let slot = self.slots.intern(v) as usize;
                        if yes.len() <= slot {
                            yes.resize(self.slots.len(), 0);
                        }
                        let word = slot / WORD_BITS;
                        if voted.len() <= word {
                            voted.resize(word + 1, 0);
                        }
                        voted[word] |= 1u64 << (slot % WORD_BITS);
                        if b {
                            yes[slot] += 1;
                        }
                    }
                }
            }
            self.counts.clear();
            self.counts.resize(self.slots.len(), 0);
            for_each_slot(&voted, |slot| {
                // Keys we have never seen join with pref=false implicitly.
                // Absent senders count as false votes: the majority is over
                // all N processes, with silence read as false.
                let y = yes[slot] as usize;
                let no = self.n - y;
                let (maj, cnt) = if y >= no { (true, y) } else { (false, no) };
                self.prefs.insert(self.slots.value_of(slot as u32), maj);
                self.counts[slot] = cnt as u32;
            });
        } else {
            // King round: adopt the king's bit wherever our own support was
            // below the safety threshold n/2 + t + 1. Only the message from
            // the current phase king's own link counts — anything else is an
            // impersonation attempt and is ignored.
            let threshold = self.n / 2 + self.t + 1;
            let king_link = self.king_links[Self::phase_of(round) - 1];
            let king_map: Option<&BTreeMap<V, bool>> = inbox
                .into_iter()
                .find(|(l, _)| *l == king_link)
                .and_then(|(_, msg)| match msg {
                    ConsensusMsg::King(m) => Some(m),
                    _ => None,
                });
            let keys: Vec<V> = self.prefs.keys().cloned().collect();
            let mut adopted = 0usize;
            for v in keys {
                let count = self
                    .slots
                    .lookup(&v)
                    .and_then(|s| self.counts.get(s as usize).copied())
                    .unwrap_or(0) as usize;
                let supported = count >= threshold;
                if !supported {
                    let king_bit = king_map.and_then(|m| m.get(&v).copied()).unwrap_or(false);
                    self.prefs.insert(v, king_bit);
                    adopted += 1;
                }
            }
            record_if(self.recorder.as_ref(), || ProtocolEvent::KingRound {
                step: round.number(),
                phase: Self::phase_of(round) as u32,
                king: king_link,
                king_heard: king_map.is_some(),
                adopted,
            });
            // Also adopt king-only keys (instances we have never heard of).
            if let Some(m) = king_map {
                for (v, &b) in m {
                    self.prefs.entry(v.clone()).or_insert(b);
                }
            }
            if Self::phase_of(round) == self.t + 1 {
                self.decided = Some(
                    self.prefs
                        .iter()
                        .filter(|(_, &b)| b)
                        .map(|(v, _)| v.clone())
                        .collect(),
                );
            }
        }
    }
}

impl<V: Ord + Clone + Debug + WireSize + Send + Sync> Actor for VectorPhaseKing<V> {
    type Msg = ConsensusMsg<V>;
    type Output = BTreeSet<V>;

    fn send(&mut self, round: Round) -> Outbox<ConsensusMsg<V>> {
        if self.decided.is_some() {
            return Outbox::Silent;
        }
        if Self::is_exchange_round(round) {
            Outbox::Broadcast(ConsensusMsg::Pref(self.prefs.clone()))
        } else if Self::phase_of(round) == self.my_index + 1 {
            Outbox::Broadcast(ConsensusMsg::King(self.prefs.clone()))
        } else {
            Outbox::Silent
        }
    }

    fn deliver(&mut self, round: Round, inbox: Inbox<ConsensusMsg<V>>) {
        self.deliver_borrowed(round, inbox.messages());
    }

    fn output(&self) -> Option<BTreeSet<V>> {
        self.decided.clone()
    }
}

/// A single-instance (binary) phase-king participant: decides `{Unit}` for
/// `true` or `{}` for `false`. See [`VectorPhaseKing::new`] for the
/// `king_links` parameter.
pub fn binary(
    n: usize,
    t: usize,
    my_index: usize,
    king_links: Vec<opr_types::LinkId>,
    input: bool,
) -> VectorPhaseKing<Unit> {
    let initial = if input {
        BTreeSet::from([Unit])
    } else {
        BTreeSet::new()
    };
    VectorPhaseKing::new(n, t, my_index, king_links, initial)
}

/// Builds the `king_links` vector for process `me` from a topology — the
/// harness-side embodiment of the granted global numbering.
pub fn king_links_for(topology: &opr_sim::Topology, me: usize) -> Vec<opr_types::LinkId> {
    (0..topology.n())
        .map(|k| {
            topology.incoming_label(
                opr_types::ProcessIndex::new(me),
                opr_types::ProcessIndex::new(k),
            )
        })
        .collect()
}

/// Key type for [`binary`] consensus (a unit that satisfies the wire-size
/// bound of one bit-carrying key).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Unit;

impl WireSize for Unit {
    fn wire_bits(&self) -> u64 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opr_sim::{Network, Topology};
    use opr_types::Round as R;

    type Msg = ConsensusMsg<Unit>;
    type Out = BTreeSet<Unit>;

    /// Byzantine strategy for tests: equivocates prefs and lies as king.
    struct Liar {
        n: usize,
    }
    impl Actor for Liar {
        type Msg = Msg;
        type Output = Out;
        fn send(&mut self, round: R) -> Outbox<Msg> {
            // Send `true` to odd links, `false` to even links, every round,
            // and claim kingship messages whenever possible.
            let make = |b: bool, king: bool| {
                let map = BTreeMap::from([(Unit, b)]);
                if king {
                    ConsensusMsg::King(map)
                } else {
                    ConsensusMsg::Pref(map)
                }
            };
            let king_round = round.number().is_multiple_of(2);
            Outbox::Multicast(
                (1..=self.n)
                    .map(|l| (opr_types::LinkId::new(l), make(l % 2 == 0, king_round)))
                    .collect(),
            )
        }
        fn deliver(&mut self, _round: R, _inbox: Inbox<Msg>) {}
        fn output(&self) -> Option<Out> {
            None
        }
    }

    fn run_binary(n: usize, t: usize, inputs: &[Option<bool>], seed: u64) -> Vec<Option<bool>> {
        assert_eq!(inputs.len(), n);
        let topo = Topology::seeded(n, seed);
        let mut actors: Vec<Box<dyn Actor<Msg = Msg, Output = Out>>> = Vec::new();
        let mut correct = Vec::new();
        for (i, input) in inputs.iter().enumerate() {
            match input {
                Some(b) => {
                    actors.push(Box::new(binary(n, t, i, king_links_for(&topo, i), *b)));
                    correct.push(true);
                }
                None => {
                    actors.push(Box::new(Liar { n }));
                    correct.push(false);
                }
            }
        }
        let mut net = Network::with_faults(actors, correct.clone(), topo);
        let rounds = VectorPhaseKing::<Unit>::total_rounds(n, t);
        let report = net.run(rounds);
        assert!(
            report.completed,
            "consensus must terminate in 2(t+1) rounds"
        );
        assert_eq!(report.rounds_executed, rounds);
        (0..n)
            .map(|i| {
                if correct[i] {
                    Some(net.output_of(i).map(|s| s.contains(&Unit)).unwrap())
                } else {
                    None
                }
            })
            .collect()
    }

    #[test]
    fn unanimous_inputs_decide_that_value() {
        for value in [true, false] {
            let n = 6;
            let inputs = vec![Some(value); n];
            let outs = run_binary(n, 1, &inputs, 5);
            for o in outs.into_iter().flatten() {
                assert_eq!(o, value, "validity violated");
            }
        }
    }

    #[test]
    fn agreement_under_split_inputs_and_byzantine_king() {
        // N = 6, t = 1: the liar occupies rotation slot 0, so it is king of
        // phase 1 and lies; phase 2's king is correct and forces agreement.
        let n = 6;
        let inputs = vec![
            None,
            Some(true),
            Some(false),
            Some(true),
            Some(false),
            Some(true),
        ];
        for seed in 0..10 {
            let outs = run_binary(n, 1, &inputs, seed);
            let decided: Vec<bool> = outs.into_iter().flatten().collect();
            assert_eq!(decided.len(), 5);
            assert!(
                decided.iter().all(|&b| b == decided[0]),
                "agreement violated: {decided:?} (seed {seed})"
            );
        }
    }

    #[test]
    fn agreement_with_byzantine_in_every_rotation_slot() {
        let n = 10;
        let t = 2;
        for byz_slots in [[0usize, 1], [1, 2], [0, 2]] {
            let inputs: Vec<Option<bool>> = (0..n)
                .map(|i| {
                    if byz_slots.contains(&i) {
                        None
                    } else {
                        Some(i % 2 == 0)
                    }
                })
                .collect();
            let outs = run_binary(n, t, &inputs, 77);
            let decided: Vec<bool> = outs.into_iter().flatten().collect();
            assert!(decided.iter().all(|&b| b == decided[0]), "{decided:?}");
        }
    }

    #[test]
    fn vector_instances_decide_correct_ids() {
        // All correct processes propose {1, 2}; nobody proposes 9. The
        // decided set must contain 1 and 2 (validity) and the correct
        // processes must agree exactly.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
        struct K(u8);
        impl WireSize for K {
            fn wire_bits(&self) -> u64 {
                8
            }
        }
        let n = 6;
        let t = 1;
        let topo = Topology::seeded(n, 2);
        let mut actors: Vec<Box<dyn Actor<Msg = ConsensusMsg<K>, Output = BTreeSet<K>>>> =
            Vec::new();
        for i in 0..n {
            actors.push(Box::new(VectorPhaseKing::new(
                n,
                t,
                i,
                king_links_for(&topo, i),
                BTreeSet::from([K(1), K(2)]),
            )));
        }
        let mut net = Network::new(actors, topo);
        net.run(VectorPhaseKing::<K>::total_rounds(n, t));
        let first = net.output_of(0).unwrap();
        assert_eq!(first, BTreeSet::from([K(1), K(2)]));
        for i in 1..n {
            assert_eq!(net.output_of(i).unwrap(), first);
        }
    }

    #[test]
    fn recorder_captures_king_rounds() {
        let n = 6;
        let t = 1;
        let topo = Topology::seeded(n, 5);
        let recorder = opr_obs::shared_recorder();
        let mut actors: Vec<Box<dyn Actor<Msg = Msg, Output = Out>>> = Vec::new();
        for i in 0..n {
            let mut p = binary(n, t, i, king_links_for(&topo, i), true);
            if i == 0 {
                p.attach_recorder(recorder.clone());
            }
            actors.push(Box::new(p));
        }
        let mut net = Network::new(actors, topo);
        assert!(
            net.run(VectorPhaseKing::<Unit>::total_rounds(n, t))
                .completed
        );
        let events = recorder.lock().unwrap().clone().into_events();
        // One KingRound per phase (t + 1 phases), each king heard, and with
        // unanimous inputs no instance ever needs the king's bit.
        assert_eq!(events.len(), t + 1);
        for (i, e) in events.iter().enumerate() {
            match e {
                ProtocolEvent::KingRound {
                    step,
                    phase,
                    king_heard,
                    adopted,
                    ..
                } => {
                    assert_eq!(*phase, i as u32 + 1);
                    assert_eq!(*step, 2 * (i as u32 + 1));
                    assert!(*king_heard);
                    assert_eq!(*adopted, 0);
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "4t + 2")]
    fn rejects_insufficient_resilience() {
        let links = (1..=5).map(opr_types::LinkId::new).collect();
        let _ = binary(5, 1, 0, links, true);
    }

    #[test]
    fn total_rounds_is_linear_in_t() {
        assert_eq!(VectorPhaseKing::<Unit>::total_rounds(10, 0), 2);
        assert_eq!(VectorPhaseKing::<Unit>::total_rounds(10, 2), 6);
        assert_eq!(VectorPhaseKing::<Unit>::total_rounds(42, 10), 22);
    }

    #[test]
    fn message_size_counts_keys() {
        let m: ConsensusMsg<Unit> = ConsensusMsg::Pref(BTreeMap::from([(Unit, true)]));
        assert!(m.wire_bits() > 0);
    }
}
