#![warn(missing_docs)]
//! Synchronous Byzantine consensus — the substrate of the consensus-based
//! renaming baseline (B2).
//!
//! The paper argues (Sections I and III) that renaming *via consensus* is
//! viable in synchronous systems but needs `Ω(t)` rounds, whereas its own
//! algorithms need `O(log t)` or `O(1)`. To reproduce that comparison we
//! implement the classic **phase-king** protocol (Berman & Garay): `t + 1`
//! phases of two rounds each — a universal exchange followed by a king
//! broadcast — deciding after `2(t + 1)` rounds.
//!
//! # Model substitution (documented in DESIGN.md)
//!
//! Phase king requires a rotating, globally-agreed king, i.e. globally
//! consistent process numbering — which the paper's model deliberately lacks
//! (a receiver knows only local link labels). We grant the baseline this
//! *extra power*; it is used purely as a round/message-cost comparator, and
//! the gift only makes the baseline look better. The simple two-round phase
//! king also requires `N ≥ 4t + 2` rather than the optimal `N > 3t`;
//! baseline sweeps use `N = max(4t + 2, …)` accordingly.
//!
//! # Pieces
//!
//! * [`VectorPhaseKing`] — phase king run over a dynamic *vector* of binary
//!   instances keyed by an ordered value type. Baseline B2 uses one instance
//!   per candidate id to agree on the final id set.
//! * [`binary`] — convenience constructor for a single-instance (plain
//!   binary consensus) configuration, used heavily in tests.

pub mod phase_king;

pub use phase_king::{binary, king_links_for, ConsensusMsg, Unit, VectorPhaseKing};
