//! Parameterized sweep runner: measure any implementation across `(N, t)`
//! grids, adversaries and seeds, emitting CSV for downstream analysis.
//!
//! ```text
//! cargo run -p opr-bench --bin sweep -- --alg alg1-log --t 1..5 --seeds 10
//! cargo run -p opr-bench --bin sweep -- --alg alg4-2step --t 1..4 --adversary fake-flood
//! cargo run -p opr-bench --bin sweep -- --alg b2-consensus --t 1..6 --n-extra 4 --jobs 4
//! ```
//!
//! `N` defaults to each implementation's minimal legal value for the given
//! `t` (plus `--n-extra`). Output columns: algorithm, adversary, N, t, seed,
//! rounds, messages, bits, max-message-bits, max-name, violations. `--jobs`
//! spreads the grid over executor workers; rows print in grid order either
//! way, so the CSV is byte-identical at any worker count.

use opr_adversary::AdversarySpec;
use opr_exec::RunPool;
use opr_transport::BackendKind;
use opr_types::SystemConfig;
use opr_workload::{run_grid, Algorithm, GridPoint, IdDistribution};

fn parse_range(s: &str) -> Option<(usize, usize)> {
    if let Some((a, b)) = s.split_once("..") {
        Some((a.parse().ok()?, b.parse().ok()?))
    } else {
        let v = s.parse().ok()?;
        Some((v, v + 1))
    }
}

fn algorithm_by_label(label: &str) -> Option<Algorithm> {
    Algorithm::ALL.into_iter().find(|a| a.label() == label)
}

fn adversary_by_label(label: &str) -> Option<AdversarySpec> {
    AdversarySpec::ALG1
        .iter()
        .chain(AdversarySpec::TWO_STEP.iter())
        .copied()
        .find(|s| s.label() == label)
}

fn usage() -> ! {
    eprintln!(
        "usage: sweep --alg <label> [--t A..B] [--seeds K] [--adversary <label>] [--n-extra E] [--backend sim|threaded|pooled|auto] [--jobs N]\n\
         algorithms: {}\n\
         adversaries: {}",
        Algorithm::ALL.map(|a| a.label()).join(", "),
        AdversarySpec::ALG1
            .iter()
            .chain(AdversarySpec::TWO_STEP.iter())
            .map(|s| s.label())
            .collect::<Vec<_>>()
            .join(", "),
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut alg: Option<Algorithm> = None;
    let mut t_range = (1usize, 4usize);
    let mut seeds = 3u64;
    let mut adversary: Option<AdversarySpec> = None;
    let mut n_extra = 0usize;
    let mut backend = BackendKind::default();
    let mut backend_auto = false;
    let mut jobs = 1usize;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--alg" => alg = it.next().and_then(|v| algorithm_by_label(v)),
            "--t" => {
                t_range = it
                    .next()
                    .and_then(|v| parse_range(v))
                    .unwrap_or_else(|| usage())
            }
            "--seeds" => {
                seeds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--adversary" => adversary = it.next().and_then(|v| adversary_by_label(v)),
            "--n-extra" => {
                n_extra = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--backend" => match it.next().map(String::as_str) {
                Some("auto") => backend_auto = true,
                Some(label) => backend = BackendKind::parse(label).unwrap_or_else(|| usage()),
                None => usage(),
            },
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    let Some(alg) = alg else { usage() };
    let spec = adversary.unwrap_or(if alg.byzantine_suite_applicable() {
        AdversarySpec::IdForge
    } else {
        AdversarySpec::Silent
    });

    // Build the whole grid in row order, execute it on the pool (results
    // come back reassembled in the same order), then print serially.
    let mut cells: Vec<(usize, usize, u64)> = Vec::new();
    let mut points: Vec<GridPoint> = Vec::new();
    for t in t_range.0..t_range.1 {
        let n = alg.minimal_n(t) + n_extra;
        let Ok(cfg) = SystemConfig::new(n, t) else {
            continue;
        };
        for seed in 0..seeds {
            let ids = IdDistribution::SparseRandom.generate(n - t, seed * 7 + 1);
            cells.push((n, t, seed));
            points.push(GridPoint {
                algorithm: alg,
                cfg,
                correct_ids: ids,
                faulty: t,
                adversary: spec,
                seed,
                backend: if backend_auto {
                    BackendKind::auto_for(n as u32)
                } else {
                    backend
                },
            });
        }
    }
    println!("algorithm,adversary,N,t,seed,rounds,messages,bits,max-msg-bits,max-name,violations");
    let results = run_grid(&RunPool::new(jobs), points);
    for (&(n, t, seed), result) in cells.iter().zip(results) {
        match result {
            Ok(stats) => println!(
                "{},{},{},{},{},{},{},{},{},{},{}",
                alg.label(),
                stats.adversary,
                n,
                t,
                seed,
                stats.rounds,
                stats.messages,
                stats.bits,
                stats.max_message_bits,
                stats.max_name.unwrap_or(-1),
                stats.violations,
            ),
            Err(e) => eprintln!("# {} N={n} t={t} seed={seed}: {e}", alg.label()),
        }
    }
}
