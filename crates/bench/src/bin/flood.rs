//! Flood-core benchmark: the interned slot-bitset Echo/Ready accumulation
//! (`EchoReadyFlood`) against the seed `BTreeSet`/`BTreeMap` path
//! (`reference::SetFlood`) on identical inputs.
//!
//! ```text
//! cargo run --release -p opr-bench --bin flood -- --out crates/bench/BENCH_flood.json
//! ```
//!
//! One receiver is hand-driven through all four flood steps against
//! pre-built inboxes simulating `N` senders whose `Echo`/`Ready` payloads
//! each carry all `N` values — the O(N²) value-slots per step that made the
//! seed's per-value ordered-tree accumulation the O(N³·log N) hot path of
//! every protocol round. Both implementations consume the *same*
//! `FloodMsg` payloads and must finish with the same `FloodResult`; only
//! the accumulation machinery differs. Reported per variant and N ∈
//! {128, 512, 1024}: mean ns per step ("round") and heap allocations per
//! round, from a counting `#[global_allocator]`.
//!
//! The headline gate (`--check`, used by CI) holds the slot-bitset core to
//! ≥4× the seed path at N = 1024. This is a single-threaded comparison of
//! pure data-structure work, so — unlike the `pool` group's parallelism
//! gate — it is meaningful on 1-core containers too.

use opr_rbcast::reference::SetFlood;
use opr_rbcast::{EchoReadyFlood, FloodMsg, FloodResult, IdInterner, IdSlotSet};
use opr_sim::{WireSize, ID_BITS};
use opr_types::LinkId;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts every heap allocation (including reallocations) made through the
/// global allocator. Deallocation is free to stay out of the hot path's way.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Val(u64);

impl WireSize for Val {
    fn wire_bits(&self) -> u64 {
        ID_BITS
    }
}

const STEPS: u32 = 4;

/// The four per-step inboxes one receiver sees in an all-correct N-process
/// flood: N `Init`s, then N `Echo`s / `Ready`s each carrying all N values.
/// Payloads are interned against `interner` — the shared-registry fast path
/// a production run sets up — and reused across iterations, as the sealed
/// broadcast payloads are in the real transport.
fn inboxes(n: usize, interner: &IdInterner<Val>) -> Vec<Vec<(LinkId, FloodMsg<Val>)>> {
    let values: Vec<Val> = (0..n as u64).map(Val).collect();
    let full = IdSlotSet::from_values(interner, values.iter().copied());
    (1..=STEPS)
        .map(|step| {
            (0..n)
                .map(|i| {
                    let link = LinkId::new(i + 1);
                    let msg = match step {
                        1 => FloodMsg::Init(values[i]),
                        2 => FloodMsg::Echo(full.clone()),
                        _ => FloodMsg::Ready(full.clone()),
                    };
                    (link, msg)
                })
                .collect()
        })
        .collect()
}

/// Runs one receiver through all four steps; returns its result for the
/// cross-variant sanity check.
trait Receiver {
    fn run(&mut self, inboxes: &[Vec<(LinkId, FloodMsg<Val>)>]) -> FloodResult<Val>;
}

struct New(EchoReadyFlood<Val>);

impl Receiver for New {
    fn run(&mut self, inboxes: &[Vec<(LinkId, FloodMsg<Val>)>]) -> FloodResult<Val> {
        for (i, inbox) in inboxes.iter().enumerate() {
            let step = i as u32 + 1;
            black_box(self.0.send(step));
            self.0.deliver(step, inbox.iter().map(|(l, m)| (*l, m)));
        }
        self.0.result().expect("flood finished").clone()
    }
}

struct Old(SetFlood<Val>);

impl Receiver for Old {
    fn run(&mut self, inboxes: &[Vec<(LinkId, FloodMsg<Val>)>]) -> FloodResult<Val> {
        for (i, inbox) in inboxes.iter().enumerate() {
            let step = i as u32 + 1;
            black_box(self.0.send_values(step));
            self.0.deliver(step, inbox.iter().map(|(l, m)| (*l, m)));
        }
        self.0.result().expect("flood finished").clone()
    }
}

struct Row {
    name: String,
    n: usize,
    iterations: usize,
    mean_ns: f64,
    allocs_per_round: f64,
}

impl Row {
    fn round_ns(&self) -> f64 {
        self.mean_ns / f64::from(STEPS)
    }
    fn json(&self) -> String {
        format!(
            "  {{\"group\": \"flood\", \"name\": \"{}\", \"n\": {}, \"steps\": {STEPS}, \
             \"iterations\": {}, \"mean_ns\": {:.1}, \"round_ns\": {:.1}, \
             \"allocs_per_round\": {:.1}}}",
            self.name,
            self.n,
            self.iterations,
            self.mean_ns,
            self.round_ns(),
            self.allocs_per_round,
        )
    }
}

fn measure<R: Receiver>(
    name: String,
    n: usize,
    iterations: usize,
    inboxes: &[Vec<(LinkId, FloodMsg<Val>)>],
    mut fresh: impl FnMut() -> R,
) -> Row {
    // Warm-up run outside the bracket (first-touch growth, lazy pages).
    let expected = fresh().run(inboxes);
    assert_eq!(expected.timely.len(), n, "{name}: degenerate input");
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    let start = Instant::now();
    for _ in 0..iterations {
        let mut receiver = fresh();
        let result = receiver.run(inboxes);
        debug_assert_eq!(result.timely.len(), n);
        black_box(result.accepted.len());
    }
    let mean_ns = start.elapsed().as_nanos() as f64 / iterations as f64;
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    let allocs_per_round = allocs as f64 / iterations as f64 / f64::from(STEPS);
    let row = Row {
        name,
        n,
        iterations,
        mean_ns,
        allocs_per_round,
    };
    eprintln!(
        "flood {}: {:.0} ns/round, {:.0} allocs/round ({} iters)",
        row.name,
        row.round_ns(),
        row.allocs_per_round,
        row.iterations
    );
    row
}

fn iters(n: usize) -> usize {
    match n {
        0..=128 => 40,
        129..=512 => 10,
        _ => 4,
    }
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut check = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out_path = it.next(),
            "--check" => check = true,
            _ => {
                eprintln!("usage: flood [--out <path>] [--check]");
                std::process::exit(2);
            }
        }
    }

    let mut rows: Vec<Row> = Vec::new();
    for n in [128usize, 512, 1024] {
        let t = (n - 1) / 3;
        let interner = IdInterner::new();
        let inboxes = inboxes(n, &interner);
        // Both variants consume the identical pre-built payloads and must
        // agree on the outcome before either is timed.
        let new_result = New(EchoReadyFlood::with_interner(
            n,
            t,
            Some(Val(0)),
            interner.clone(),
        ))
        .run(&inboxes);
        let old_result = Old(SetFlood::new(n, t, Some(Val(0)))).run(&inboxes);
        assert_eq!(new_result, old_result, "variants diverged at N={n}");

        rows.push(measure(format!("old/N{n}"), n, iters(n), &inboxes, || {
            Old(SetFlood::new(n, t, Some(Val(0))))
        }));
        rows.push(measure(format!("new/N{n}"), n, iters(n), &inboxes, || {
            New(EchoReadyFlood::with_interner(
                n,
                t,
                Some(Val(0)),
                interner.clone(),
            ))
        }));
    }

    let mean = |name: &str| {
        rows.iter()
            .find(|r| r.name == name)
            .map(|r| r.mean_ns)
            .expect("row measured")
    };
    let speedup = mean("old/N1024") / mean("new/N1024");
    eprintln!("flood: slot-bitset core is {speedup:.1}x the seed set path at N=1024");

    let mut lines: Vec<String> = rows.iter().map(Row::json).collect();
    lines.push(format!(
        "  {{\"group\": \"flood\", \"name\": \"speedup/new-vs-old-N1024\", \
         \"n\": 1024, \"speedup\": {speedup:.2}}}"
    ));
    let json = format!("[\n{}\n]\n", lines.join(",\n"));

    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write benchmark output");
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }

    if check && speedup < 4.0 {
        eprintln!(
            "flood: gate failed: expected >=4x over the seed path at N=1024, got {speedup:.1}x"
        );
        std::process::exit(1);
    }
}
