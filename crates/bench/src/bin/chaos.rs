//! Chaos campaign driver: randomized fault-schedule exploration with
//! paper-invariant oracles, shrinking and replayable repro files.
//!
//! ```text
//! # A 500-run mixed-budget campaign on both backends, 4 executor workers:
//! cargo run --release -p opr-bench --bin chaos -- --seed 42 --runs 500 --budget mixed --backend both --jobs 4
//!
//! # Replay a repro file captured by a failing campaign:
//! cargo run --release -p opr-bench --bin chaos -- --repro chaos-repro.json
//!
//! # Replay a repro with the protocol recorder attached and print every
//! # process's decision waterfall (optionally exporting the event stream):
//! cargo run --release -p opr-bench --bin chaos -- explain chaos-repro.json \
//!     --events events.jsonl --perfetto trace.json
//!
//! # Prove the shrink/repro pipeline end-to-end on an injected failure:
//! cargo run --release -p opr-bench --bin chaos -- --self-test
//!
//! # Measure campaign throughput per backend into BENCH_chaos.json:
//! cargo run --release -p opr-bench --bin chaos -- --bench crates/bench/BENCH_chaos.json
//!
//! # Measure serial-vs-parallel executor throughput into BENCH_exec.json:
//! cargo run --release -p opr-bench --bin chaos -- --bench-exec crates/bench/BENCH_exec.json
//!
//! # Service-layer smoke: seeded multi-epoch service specs judged by the
//! # ledger oracle suite, with a jobs-determinism cross-check per spec:
//! cargo run --release -p opr-bench --bin chaos -- --service --seed 42 --runs 20
//!
//! # Replay a service repro captured by a failing smoke:
//! cargo run --release -p opr-bench --bin chaos -- --service --repro service-repro.json
//! ```
//!
//! Exit status: 0 when the campaign (or replay, or self-test) passes,
//! 1 on failure, 2 on usage errors.

use opr_chaos::engine::{
    execute_schedule, judge_schedule, per_run_seed, run_campaign, BackendChoice, CampaignConfig,
};
use opr_chaos::explain::explain_repro;
use opr_chaos::fitness::{evaluate, FitnessKind};
use opr_chaos::generator::generate_schedule;
use opr_chaos::oracle::standard_suite;
use opr_chaos::repro::Repro;
use opr_chaos::schedule::{BudgetRegime, ChaosSchedule};
use opr_chaos::search::{random_search_on, render_search_json, repro_for, run_search_on};
use opr_chaos::shrink::shrink;
use opr_chaos::SearchConfig;
use opr_exec::RunPool;
use opr_obs::{render_jsonl, render_trace_json};
use opr_sim::RunMetrics;

fn usage() -> ! {
    eprintln!(
        "usage: chaos [--seed S] [--runs K] [--budget in|at|over|mixed]\n\
         \x20            [--backend sim|threaded|pooled|both|all|auto]\n\
         \x20            [--jobs N] [--repro-out <file>] [--events <file>]\n\
         \x20      chaos explain <file> [--events <file>] [--perfetto <file>]\n\
         \x20                                replay a repro with the recorder attached and\n\
         \x20                                print the per-process decision waterfall\n\
         \x20      chaos --repro <file>      replay a captured failure\n\
         \x20      chaos --self-test         inject a failure, shrink it, round-trip the repro\n\
         \x20      chaos --bench <file>      measure runs/sec per backend into <file>\n\
         \x20      chaos --bench-exec <file> measure runs/sec at 1/2/4/8 jobs into <file>\n\
         \x20      chaos --service [--seed S] [--runs K] [--repro-out <file>]\n\
         \x20                                service-layer smoke: seeded epoch-engine specs\n\
         \x20                                judged by the ledger oracles + jobs determinism\n\
         \x20      chaos --service --repro <file>  replay a captured service failure\n\
         \x20      chaos --search [--seed S] [--budget in|at|over]\n\
         \x20                     [--backend sim|threaded|pooled|both|all|auto]\n\
         \x20                     [--jobs N] [--fitness margin|rounds|namespace|spread|drops]\n\
         \x20                     [--beam B] [--generations G] [--evals E] [--init I] [--top-k K]\n\
         \x20                     [--out-dir DIR] [--search-report <file>] [--baseline] [--timing]\n\
         \x20                                guided adversary search: optimize attack schedules,\n\
         \x20                                emit the top-K as replayable repro files\n\
         \x20      chaos --search --service  hill-climb over service-spec seeds, judged by\n\
         \x20                                ledger-oracle shard-pressure margins"
    );
    std::process::exit(2);
}

struct Args {
    seed: u64,
    runs: usize,
    budget: Option<BudgetRegime>,
    backend: BackendChoice,
    jobs: usize,
    repro: Option<String>,
    repro_out: String,
    self_test: bool,
    bench: Option<String>,
    bench_exec: Option<String>,
    events_out: Option<String>,
    search: bool,
    fitness: FitnessKind,
    beam: usize,
    generations: usize,
    evals: usize,
    init: usize,
    top_k: usize,
    out_dir: String,
    search_report: Option<String>,
    baseline: bool,
    timing: bool,
}

/// `chaos explain <file> [--events <file>] [--perfetto <file>]`.
struct ExplainArgs {
    repro: String,
    events_out: Option<String>,
    perfetto_out: Option<String>,
}

fn parse_explain_args(raw: &[String]) -> ExplainArgs {
    let mut args = ExplainArgs {
        repro: String::new(),
        events_out: None,
        perfetto_out: None,
    };
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--events" => args.events_out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--perfetto" => args.perfetto_out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            path if args.repro.is_empty() && !path.starts_with("--") => args.repro = path.into(),
            _ => usage(),
        }
    }
    if args.repro.is_empty() {
        usage();
    }
    args
}

fn parse_args(raw: &[String]) -> Args {
    let mut args = Args {
        seed: 42,
        runs: 200,
        budget: None,
        backend: BackendChoice::Both,
        jobs: 1,
        repro: None,
        repro_out: "chaos-repro.json".to_string(),
        self_test: false,
        bench: None,
        bench_exec: None,
        events_out: None,
        search: false,
        fitness: FitnessKind::Margin,
        beam: 4,
        generations: 6,
        evals: 96,
        init: 24,
        top_k: 3,
        out_dir: ".".to_string(),
        search_report: None,
        baseline: false,
        timing: false,
    };
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--runs" => {
                args.runs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--budget" => {
                args.budget = match it.next().map(String::as_str) {
                    Some("mixed") => None,
                    Some(label) => Some(BudgetRegime::parse(label).unwrap_or_else(|| usage())),
                    None => usage(),
                }
            }
            "--backend" => {
                args.backend = it
                    .next()
                    .and_then(|v| BackendChoice::parse(v))
                    .unwrap_or_else(|| usage())
            }
            "--jobs" => {
                args.jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--repro" => args.repro = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--repro-out" => args.repro_out = it.next().cloned().unwrap_or_else(|| usage()),
            "--self-test" => args.self_test = true,
            "--bench" => args.bench = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--bench-exec" => args.bench_exec = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--events" => args.events_out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--search" => args.search = true,
            "--fitness" => {
                args.fitness = it
                    .next()
                    .and_then(|v| FitnessKind::parse(v))
                    .unwrap_or_else(|| usage())
            }
            "--beam" => {
                args.beam = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--generations" => {
                args.generations = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--evals" => {
                args.evals = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--init" => {
                args.init = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--top-k" => {
                args.top_k = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out-dir" => args.out_dir = it.next().cloned().unwrap_or_else(|| usage()),
            "--search-report" => {
                args.search_report = Some(it.next().cloned().unwrap_or_else(|| usage()))
            }
            "--baseline" => args.baseline = true,
            "--timing" => args.timing = true,
            _ => usage(),
        }
    }
    args
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("explain") {
        std::process::exit(explain(&parse_explain_args(&raw[1..])));
    }
    if raw.iter().any(|flag| flag == "--service") {
        let rest: Vec<String> = raw.into_iter().filter(|flag| flag != "--service").collect();
        let mut args = parse_args(&rest);
        if args.repro_out == "chaos-repro.json" {
            args.repro_out = "service-repro.json".to_string();
        }
        let exit = match (&args.repro, args.search) {
            (Some(path), _) => service_replay(path),
            (None, true) => service_search(&args),
            (None, false) => service_smoke(&args),
        };
        std::process::exit(exit);
    }
    let args = parse_args(&raw);
    let oracles = standard_suite();
    let exit = if let Some(path) = &args.repro {
        replay(path, &oracles)
    } else if args.search {
        search_cmd(&args)
    } else if args.self_test {
        self_test(&args, &oracles)
    } else if let Some(path) = &args.bench {
        bench(&args, path, &oracles)
    } else if let Some(path) = &args.bench_exec {
        bench_exec(&args, path, &oracles)
    } else {
        campaign(&args, &oracles)
    };
    std::process::exit(exit);
}

/// Replays a repro file with the protocol recorder attached and prints the
/// per-process decision waterfall; optionally exports the event stream as
/// JSONL and/or Chrome trace-event JSON (loadable in Perfetto).
fn explain(args: &ExplainArgs) -> i32 {
    let text = match std::fs::read_to_string(&args.repro) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("chaos: cannot read {}: {e}", args.repro);
            return 2;
        }
    };
    let repro = match Repro::from_json(&text) {
        Ok(repro) => repro,
        Err(e) => {
            eprintln!("chaos: {e}");
            return 2;
        }
    };
    let explained = match explain_repro(&repro) {
        Ok(explained) => explained,
        Err(e) => {
            eprintln!("chaos: replay refused: {e}");
            return 1;
        }
    };
    print!("{}", explained.text);
    let log = match &explained.run.events {
        Some(log) => log,
        None => {
            eprintln!("chaos: replay produced no event log");
            return 1;
        }
    };
    for (path, payload) in [
        (
            &args.events_out,
            args.events_out.as_ref().map(|_| render_jsonl(log)),
        ),
        (
            &args.perfetto_out,
            args.perfetto_out
                .as_ref()
                .map(|_| render_trace_json(log, None)),
        ),
    ] {
        if let (Some(path), Some(payload)) = (path, payload) {
            match std::fs::write(path, payload) {
                Ok(()) => eprintln!("chaos: wrote {path}"),
                Err(e) => {
                    eprintln!("chaos: could not write {path}: {e}");
                    return 1;
                }
            }
        }
    }
    0
}

/// The reference-backend metrics of one (contained) execution of
/// `schedule`, for embedding into a written repro file. Panicking
/// schedules yield `None` — the repro still round-trips.
fn capture_metrics(schedule: &ChaosSchedule, backend: BackendChoice) -> Option<RunMetrics> {
    execute_schedule(schedule, backend)
        .ok()
        .map(|run| run.reference.metrics)
}

/// Re-runs campaign run #0's schedule with the recorder attached and writes
/// the merged protocol event stream as JSONL — the campaign's exported
/// telemetry artifact (CI uploads it from the smoke campaign).
fn write_campaign_events(args: &Args, path: &str) {
    let budget = args.budget.unwrap_or(BudgetRegime::ALL[0]);
    let schedule = generate_schedule(per_run_seed(args.seed, 0), budget);
    let (reference, _) = args.backend.backends();
    match schedule.run_observed(reference, None) {
        Ok(run) => match run.events {
            Some(log) => match std::fs::write(path, render_jsonl(&log)) {
                Ok(()) => eprintln!("chaos: wrote {path} ({} events)", log.len()),
                Err(e) => eprintln!("chaos: could not write {path}: {e}"),
            },
            None => eprintln!("chaos: run #0 produced no event log"),
        },
        Err(e) => eprintln!("chaos: could not observe run #0: {e}"),
    }
}

fn campaign(args: &Args, oracles: &[Box<dyn opr_chaos::Oracle>]) -> i32 {
    let config = CampaignConfig {
        seed: args.seed,
        runs: args.runs,
        budget: args.budget,
        backend: args.backend,
        jobs: args.jobs,
    };
    let budget_label = args.budget.map(|b| b.label()).unwrap_or("mixed");
    eprintln!(
        "chaos: seed={} runs={} budget={} backend={} jobs={}",
        args.seed, args.runs, budget_label, args.backend, args.jobs
    );
    let report = run_campaign(&config, oracles);
    eprintln!("chaos: {report}");
    if let Some(path) = &args.events_out {
        write_campaign_events(args, path);
    }
    if report.passed() {
        return 0;
    }
    // Shrink and persist the first failure.
    let failure = &report.failures[0];
    eprintln!(
        "chaos: run #{} failed [{}] — {}",
        failure.index,
        failure.verdict.digest(),
        failure.schedule.describe()
    );
    let digest = failure.verdict.digest();
    let backend = args.backend;
    let result = shrink(&failure.schedule, |candidate| {
        let verdict = judge_schedule(candidate, backend, oracles);
        verdict.is_failure(failure.budget) && digests_overlap(&verdict.digest(), &digest)
    });
    eprintln!(
        "chaos: shrunk {} → {} events in {} attempts",
        result.original_events, result.events, result.attempts
    );
    let metrics = capture_metrics(&result.schedule, args.backend);
    let repro = Repro {
        campaign_seed: args.seed,
        run_index: failure.index,
        budget: failure.budget,
        backend: args.backend,
        digest,
        schedule: result.schedule,
        metrics,
        fitness: None,
    };
    match std::fs::write(&args.repro_out, repro.to_json()) {
        Ok(()) => eprintln!("chaos: wrote {}", args.repro_out),
        Err(e) => eprintln!("chaos: could not write {}: {e}", args.repro_out),
    }
    1
}

/// Two digests overlap when they share at least one violation kind — the
/// shrink predicate's notion of "the same failure".
fn digests_overlap(a: &str, b: &str) -> bool {
    a.split('+').any(|kind| b.split('+').any(|k| k == kind))
}

fn replay(path: &str, oracles: &[Box<dyn opr_chaos::Oracle>]) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("chaos: cannot read {path}: {e}");
            return 2;
        }
    };
    let repro = match Repro::from_json(&text) {
        Ok(repro) => repro,
        Err(e) => {
            eprintln!("chaos: {e}");
            return 2;
        }
    };
    eprintln!(
        "chaos: replaying {} (campaign seed {}, run #{}, recorded digest '{}')",
        repro.schedule.describe(),
        repro.campaign_seed,
        repro.run_index,
        repro.digest
    );
    let verdict = repro.replay(oracles);
    let digest = verdict.digest();
    eprintln!("chaos: replay digest '{digest}'");
    if !digests_overlap(&digest, &repro.digest) {
        eprintln!("chaos: failure did NOT reproduce (fixed, or environment drift)");
        return 1;
    }
    // Search-found repros also record a fitness score; the replay must
    // reproduce it exactly (the regression contract of worst-*.json seeds).
    if let Some(record) = &repro.fitness {
        let (reference, _) = repro.backend.backends();
        match repro.schedule.run_observed(reference, None) {
            Ok(run) => {
                let got = evaluate(record.kind, &repro.schedule, &run, reference).0;
                if got != record.score {
                    eprintln!(
                        "chaos: recorded fitness {}={} but replay scored {got}",
                        record.kind, record.score
                    );
                    return 1;
                }
                eprintln!("chaos: fitness {}={} reproduced", record.kind, record.score);
            }
            Err(e) => {
                eprintln!("chaos: could not re-observe for fitness check: {e}");
                return 1;
            }
        }
    }
    eprintln!("chaos: recorded digest reproduced");
    0
}

/// Injects a real failure (an over-budget schedule judged under at-budget
/// rules), shrinks it, round-trips it through the repro format, and checks
/// the replay reproduces the digest — the full pipeline in one command.
fn self_test(args: &Args, oracles: &[Box<dyn opr_chaos::Oracle>]) -> i32 {
    let injected_budget = BudgetRegime::AtBudget;
    for index in 0..1000usize {
        let seed = per_run_seed(args.seed, index);
        let schedule = generate_schedule(seed, BudgetRegime::OverBudget);
        let verdict = judge_schedule(&schedule, args.backend, oracles);
        if !verdict.is_failure(injected_budget) {
            continue;
        }
        let digest = verdict.digest();
        eprintln!(
            "chaos: injected failure at seed {seed} [{digest}] — {}",
            schedule.describe()
        );
        let backend = args.backend;
        let result = shrink(&schedule, |candidate| {
            let v = judge_schedule(candidate, backend, oracles);
            v.is_failure(injected_budget) && digests_overlap(&v.digest(), &digest)
        });
        eprintln!(
            "chaos: shrunk {} → {} events in {} attempts — {}",
            result.original_events,
            result.events,
            result.attempts,
            result.schedule.describe()
        );
        let metrics = capture_metrics(&result.schedule, args.backend);
        let repro = Repro {
            campaign_seed: args.seed,
            run_index: index,
            budget: injected_budget,
            backend: args.backend,
            digest: digest.clone(),
            schedule: result.schedule,
            metrics,
            fitness: None,
        };
        let text = repro.to_json();
        let reread = match Repro::from_json(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("chaos: self-test round-trip failed: {e}");
                return 1;
            }
        };
        if reread != repro {
            eprintln!("chaos: self-test round-trip altered the repro");
            return 1;
        }
        let replayed = reread.replay(oracles).digest();
        if !digests_overlap(&replayed, &digest) {
            eprintln!("chaos: self-test replay digest '{replayed}' does not match '{digest}'");
            return 1;
        }
        if let Err(e) = std::fs::write(&args.repro_out, text) {
            eprintln!("chaos: could not write {}: {e}", args.repro_out);
        } else {
            eprintln!("chaos: self-test passed; repro at {}", args.repro_out);
        }
        return 0;
    }
    eprintln!("chaos: self-test could not provoke a failure in 1000 schedules");
    1
}

/// Runs the CI smoke workload (the campaign `--seed/--runs/--backend`
/// describe) at 1/2/4/8 executor workers and records serial-vs-parallel
/// runs/sec — the cross-run throughput trajectory. Every campaign must
/// produce identical counts (the determinism-equivalence law); differing
/// counts fail the bench.
fn bench_exec(args: &Args, path: &str, oracles: &[Box<dyn opr_chaos::Oracle>]) -> i32 {
    // Speedup is bounded by the machine's core budget: record it per row
    // so a 1.0× on a single-core box reads as "saturated", not "broken".
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows = Vec::new();
    let mut serial_runs_per_sec = 0.0f64;
    let mut serial_counts = (0usize, 0usize);
    for jobs in [1usize, 2, 4, 8] {
        let report = run_campaign(
            &CampaignConfig {
                seed: args.seed,
                runs: args.runs,
                budget: args.budget,
                backend: args.backend,
                jobs,
            },
            oracles,
        );
        eprintln!("chaos: jobs={jobs}: {report}");
        if !report.passed() {
            eprintln!("chaos: bench-exec campaign failed at jobs={jobs}; not writing {path}");
            return 1;
        }
        if jobs == 1 {
            serial_runs_per_sec = report.runs_per_sec();
            serial_counts = (report.clean, report.degraded);
        } else if (report.clean, report.degraded) != serial_counts {
            eprintln!(
                "chaos: bench-exec determinism breach at jobs={jobs}: {}/{} clean/degraded vs serial {}/{}",
                report.clean, report.degraded, serial_counts.0, serial_counts.1
            );
            return 1;
        }
        let speedup = if serial_runs_per_sec > 0.0 {
            report.runs_per_sec() / serial_runs_per_sec
        } else {
            0.0
        };
        rows.push(format!(
            "  {{\"group\": \"exec-pool\", \"name\": \"{}/runs{}/jobs{}\", \"jobs\": {}, \"cpus\": {}, \"runs\": {}, \"clean\": {}, \"degraded\": {}, \"runs_per_sec\": {:.1}, \"speedup_vs_serial\": {:.2}}}",
            args.backend,
            args.runs,
            jobs,
            jobs,
            cpus,
            report.total,
            report.clean,
            report.degraded,
            report.runs_per_sec(),
            speedup
        ));
    }
    let body = format!("[\n{}\n]\n", rows.join(",\n"));
    match std::fs::write(path, body) {
        Ok(()) => {
            eprintln!("chaos: wrote {path}");
            0
        }
        Err(e) => {
            eprintln!("chaos: could not write {path}: {e}");
            1
        }
    }
}

fn bench(args: &Args, path: &str, oracles: &[Box<dyn opr_chaos::Oracle>]) -> i32 {
    let mut rows = Vec::new();
    for backend in [
        BackendChoice::Sim,
        BackendChoice::Threaded,
        BackendChoice::Pooled,
    ] {
        let report = run_campaign(
            &CampaignConfig {
                seed: args.seed,
                runs: args.runs,
                budget: None,
                backend,
                jobs: args.jobs,
            },
            oracles,
        );
        eprintln!("chaos: {backend}: {report}");
        if !report.passed() {
            eprintln!("chaos: bench campaign failed on {backend}; not writing {path}");
            return 1;
        }
        rows.push(format!(
            "  {{\"group\": \"chaos-campaign\", \"name\": \"{}/runs{}\", \"runs\": {}, \"clean\": {}, \"degraded\": {}, \"runs_per_sec\": {:.1}}}",
            backend,
            args.runs,
            report.total,
            report.clean,
            report.degraded,
            report.runs_per_sec()
        ));
    }
    let body = format!("[\n{}\n]\n", rows.join(",\n"));
    match std::fs::write(path, body) {
        Ok(()) => {
            eprintln!("chaos: wrote {path}");
            0
        }
        Err(e) => {
            eprintln!("chaos: could not write {path}: {e}");
            1
        }
    }
}

/// Guided adversary search over protocol schedule space: beam-search the
/// configured fitness signal, print per-generation progress, emit the
/// top-K finds as replayable repro files and (optionally) the report JSON.
/// Exit 1 when the search surfaces a genuine budget-respecting failure.
fn search_cmd(args: &Args) -> i32 {
    let config = SearchConfig {
        seed: args.seed,
        budget: args.budget.unwrap_or(BudgetRegime::AtBudget),
        backend: args.backend,
        fitness: args.fitness,
        beam: args.beam,
        generations: args.generations,
        evals: args.evals,
        init: args.init,
        top_k: args.top_k,
        jobs: args.jobs,
    };
    eprintln!(
        "chaos: search: seed={} budget={} backend={} fitness={} beam={} generations={} evals={} jobs={}",
        config.seed,
        config.budget,
        config.backend,
        config.fitness,
        config.beam,
        config.generations,
        config.evals,
        config.jobs
    );
    let pool = RunPool::new(args.jobs);
    let report = run_search_on(&pool, &config);
    for g in &report.outcome.generations {
        eprintln!(
            "chaos: gen {:>2}: best {:>12} after {:>4} evals ({} duplicates skipped)",
            g.generation, g.best, g.evaluated, g.deduped
        );
    }
    let random = if args.baseline {
        let baseline = random_search_on(&pool, &config);
        let best = baseline.best().map_or(i64::MIN, |s| s.fitness.0);
        let guided = report.best().map_or(i64::MIN, |s| s.fitness.0);
        eprintln!(
            "chaos: random baseline best {best} vs guided {guided} at {} evals",
            baseline.outcome.evaluated
        );
        if guided < best {
            eprintln!("chaos: guided search lost to random at equal budget — selection bug");
            return 1;
        }
        Some(baseline)
    } else {
        None
    };
    for (rank, scored) in report.outcome.top.iter().enumerate() {
        let repro = repro_for(&config, rank, scored);
        let path = format!("{}/chaos-search-top-{rank}.json", args.out_dir);
        match std::fs::write(&path, repro.to_json()) {
            Ok(()) => eprintln!(
                "chaos: wrote {path} (fitness {}, digest '{}')",
                scored.fitness.0, scored.digest
            ),
            Err(e) => {
                eprintln!("chaos: could not write {path}: {e}");
                return 1;
            }
        }
    }
    if let Some(path) = &args.search_report {
        let payload = render_search_json(&report, random.as_ref(), args.timing);
        match std::fs::write(path, payload) {
            Ok(()) => eprintln!("chaos: wrote {path}"),
            Err(e) => {
                eprintln!("chaos: could not write {path}: {e}");
                return 1;
            }
        }
    }
    eprintln!(
        "chaos: search done: {} evaluated, {} deduped, {:.1} evals/sec",
        report.outcome.evaluated,
        report.outcome.deduped,
        report.evals_per_sec()
    );
    if report.found_failure() {
        eprintln!("chaos: search surfaced a genuine failure — inspect the top repro files");
        return 1;
    }
    0
}

/// Draws a small legal service spec from a run seed: 1–4 shards, every
/// regime at `t = 1`, 0–1 Byzantine actors under a regime-legal adversary,
/// both backends, a tiny client universe (so clients wrap around and
/// produce duplicate-acquire/re-acquire traffic) and holds short enough to
/// recycle names within the schedule.
fn service_spec_for(seed: u64) -> opr_service::ServiceSpec {
    use opr_adversary::AdversarySpec;
    use opr_transport::BackendKind;
    use opr_types::{Regime, SystemConfig};
    let regime = Regime::ALL[(seed % 3) as usize];
    let n = 4 + ((seed >> 8) % 3) as usize; // 4..=6, legal for every regime at t = 1
    let byzantine = ((seed >> 16) % 2) as usize;
    let suite = AdversarySpec::suite(regime);
    let adversary = suite[((seed >> 24) as usize) % suite.len()];
    let backend = if (seed >> 32).is_multiple_of(2) {
        BackendKind::Sim
    } else {
        BackendKind::Threaded
    };
    let shards = 1 + (seed % 4) as usize;
    opr_service::ServiceSpec {
        service: opr_service::ServiceConfig {
            shards,
            epoch_cfg: SystemConfig::new(n, 1).expect("legal config"),
            regime,
            byzantine,
            adversary,
            backend,
            queue_capacity: 64,
            shard_span: 16,
            seed,
        },
        workload: opr_workload::ServiceWorkload {
            clients: 20,
            epochs: 10,
            arrivals_per_epoch: 2 * shards + 1,
            max_hold: 1 + ((seed >> 40) % 3),
            seed: seed ^ 0x0073_6d6f_6b65,
        },
        jobs: 1,
    }
}

/// splitmix64: the deterministic seed-mixing step the service search uses
/// to derive child seeds (no RNG dependency in the binary).
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Guided search over service-spec seed space: hill-climb toward the spec
/// whose ledger comes closest to exhausting a shard namespace, judged by
/// [`opr_service::ledger_margin`]. A spec whose ledger *violates* an
/// oracle outranks every near-miss and fails the search (exit 1), with
/// the offending spec written as a replayable service repro.
fn service_search(args: &Args) -> i32 {
    use opr_service::{judge_ledger, ledger_margin, ServiceRepro};
    eprintln!(
        "chaos: service search: seed={} beam={} generations={} evals={}",
        args.seed, args.beam, args.generations, args.evals
    );
    // One scored candidate: (fitness, seed). Higher fitness = more
    // adversarial: oracle violations dominate, then lower shard margin.
    let evaluate_seed = |seed: u64| -> (i64, usize) {
        let spec = service_spec_for(seed);
        match spec.run() {
            Ok(report) => {
                let violations = judge_ledger(&spec.service, &report.ledger);
                if !violations.is_empty() {
                    return (i64::MAX, violations.len());
                }
                match ledger_margin(&spec.service, &report.ledger) {
                    Some(margin) => (-margin, 0),
                    None => (i64::MIN, 0),
                }
            }
            // A spec that refuses to run exercises nothing.
            Err(_) => (i64::MIN, 0),
        }
    };
    let mut seen = std::collections::BTreeSet::new();
    let mut scored: Vec<(i64, usize, u64)> = Vec::new();
    let mut evaluated = 0usize;
    let mut admit = |seed: u64, scored: &mut Vec<(i64, usize, u64)>, evaluated: &mut usize| {
        if seen.insert(seed) && *evaluated < args.evals {
            *evaluated += 1;
            let (fitness, violations) = evaluate_seed(seed);
            scored.push((fitness, violations, seed));
        }
    };
    for index in 0..args.init.min(args.evals) {
        admit(per_run_seed(args.seed, index), &mut scored, &mut evaluated);
    }
    let rank = |scored: &mut Vec<(i64, usize, u64)>| {
        scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.2.cmp(&b.2)));
    };
    rank(&mut scored);
    for generation in 1..=args.generations {
        if evaluated >= args.evals || scored.is_empty() {
            break;
        }
        let beam: Vec<u64> = scored.iter().take(args.beam.max(1)).map(|s| s.2).collect();
        for (slot, parent) in beam.iter().cycle().take(args.beam.max(1) * 4).enumerate() {
            let child = splitmix(parent ^ splitmix((generation as u64) << 32 | slot as u64));
            admit(child, &mut scored, &mut evaluated);
        }
        rank(&mut scored);
        let best = scored.first().expect("non-empty");
        eprintln!(
            "chaos: service gen {generation:>2}: best fitness {} after {evaluated} evals",
            best.0
        );
    }
    scored.truncate(args.top_k.max(1));
    let mut violated = false;
    for (rank, (fitness, violations, seed)) in scored.iter().enumerate() {
        let spec = service_spec_for(*seed);
        let margin = *violations == 0 && *fitness > i64::MIN;
        eprintln!(
            "chaos: service top {rank}: seed {seed}, {}",
            if *violations > 0 {
                violated = true;
                format!("{violations} ledger violation(s)")
            } else if margin {
                format!("shard margin {}", -fitness)
            } else {
                "no grants exercised".to_string()
            }
        );
        let repro = ServiceRepro {
            spec,
            campaign_seed: args.seed,
            run_index: rank,
        };
        let path = format!("{}/service-search-top-{rank}.json", args.out_dir);
        match std::fs::write(&path, repro.to_json()) {
            Ok(()) => eprintln!("chaos: wrote {path}"),
            Err(e) => {
                eprintln!("chaos: could not write {path}: {e}");
                return 1;
            }
        }
    }
    if violated {
        eprintln!("chaos: service search surfaced ledger violations — inspect the repro files");
        return 1;
    }
    eprintln!("chaos: service search done: {evaluated} specs evaluated");
    0
}

/// The service-layer smoke: `--runs` seeded specs, each executed serially
/// and at 4 workers, judged by the ledger oracle suite, with the two
/// reports compared bit for bit. The first failure is captured as a
/// replayable `service-repro.json`.
fn service_smoke(args: &Args) -> i32 {
    use opr_service::{judge_ledger, ServiceRepro};
    eprintln!(
        "chaos: service smoke: seed={} runs={}",
        args.seed, args.runs
    );
    let started = std::time::Instant::now();
    let mut grants = 0u64;
    let mut recycled = 0u64;
    let fail = |spec: opr_service::ServiceSpec, index: usize, why: &str| -> i32 {
        eprintln!("chaos: service spec #{index} failed: {why}");
        let repro = ServiceRepro {
            spec,
            campaign_seed: args.seed,
            run_index: index,
        };
        match std::fs::write(&args.repro_out, repro.to_json()) {
            Ok(()) => eprintln!("chaos: wrote {}", args.repro_out),
            Err(e) => eprintln!("chaos: could not write {}: {e}", args.repro_out),
        }
        1
    };
    for index in 0..args.runs {
        let spec = service_spec_for(per_run_seed(args.seed, index));
        let serial = match spec.run() {
            Ok(report) => report,
            Err(e) => return fail(spec, index, &format!("run error: {e}")),
        };
        let violations = judge_ledger(&spec.service, &serial.ledger);
        if !violations.is_empty() {
            let (oracle, first) = &violations[0];
            return fail(
                spec,
                index,
                &format!(
                    "{} violation(s), first [{oracle}] {first}",
                    violations.len()
                ),
            );
        }
        let parallel_spec = opr_service::ServiceSpec { jobs: 4, ..spec };
        match parallel_spec.run() {
            Ok(report) if report == serial => {}
            Ok(_) => return fail(parallel_spec, index, "jobs=4 report diverged from serial"),
            Err(e) => return fail(parallel_spec, index, &format!("jobs=4 run error: {e}")),
        }
        grants += serial.grants;
        recycled += serial.recycled;
    }
    eprintln!(
        "chaos: service smoke passed: {} specs, {grants} grants ({recycled} recycled) in {:.1}s",
        args.runs,
        started.elapsed().as_secs_f64()
    );
    0
}

/// Replays a captured service repro: re-runs the spec and re-judges the
/// ledger. Exit 0 when the behaviour reproduces deterministically.
fn service_replay(path: &str) -> i32 {
    use opr_service::ServiceRepro;
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("chaos: cannot read {path}: {e}");
            return 2;
        }
    };
    let repro = match ServiceRepro::from_json(&text) {
        Ok(repro) => repro,
        Err(e) => {
            eprintln!("chaos: {e}");
            return 2;
        }
    };
    eprintln!(
        "chaos: replaying service spec (campaign seed {}, run #{})",
        repro.campaign_seed, repro.run_index
    );
    match repro.replay() {
        Ok((report, violations)) => {
            eprintln!(
                "chaos: service replay: {} grants, {} recycled, {} violation(s)",
                report.grants,
                report.recycled,
                violations.len()
            );
            for (oracle, violation) in violations.iter().take(10) {
                eprintln!("chaos: service replay: [{oracle}] {violation}");
            }
            0
        }
        Err(e) => {
            eprintln!("chaos: service replay failed to run: {e}");
            1
        }
    }
}
