//! Metrics overhead bench + gate: proves the hot path is allocation-free
//! and measures handle-write and snapshot costs as the registry grows.
//!
//! ```text
//! # Gate + write the committed benchmark file:
//! cargo run --release -p opr-bench --bin metrics -- --out crates/bench/BENCH_metrics.json
//! ```
//!
//! Three claims are gated (exit 1 on failure), matching the crate's cost
//! model:
//!
//! 1. **Handle writes never allocate.** `Counter::add` and
//!    `Histogram::record` through pre-created handles are relaxed
//!    `fetch_add`s; a hot loop of either must leave the allocation counter
//!    untouched.
//! 2. **The registry-off path is alloc-identical.** A protocol run with
//!    `Option<MetricsRegistry> = None` everywhere must allocate *exactly*
//!    as many times as an identical second run — the instrumentation adds
//!    no per-run allocation jitter when disabled.
//! 3. **Snapshot cost is setup-plane only.** `snapshot()` allocates (it
//!    builds `BTreeMap`s) but is measured and reported, never taken on the
//!    hot path.
//!
//! The JSON rows report per-op ns and snapshot ns at N ∈ {64, 256, 1024}
//! registered metrics (half counters, half histograms).
//!
//! Exit status: 0 on pass, 1 on gate failure, 2 on usage errors.

use opr_adversary::AdversarySpec;
use opr_metrics::MetricsRegistry;
use opr_types::{Regime, SystemConfig};
use opr_workload::RenamingRun;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn usage() -> ! {
    eprintln!("usage: metrics [--out <file>] [--ops N]");
    std::process::exit(2);
}

/// Writes per handle per hot-loop iteration; high enough that loop setup
/// noise vanishes, low enough to stay fast in CI.
const DEFAULT_OPS: u64 = 1_000_000;

/// Registry sizes the snapshot/per-op costs are reported at.
const SIZES: [usize; 3] = [64, 256, 1024];

struct Row {
    name: String,
    metrics: usize,
    ns_per_op: f64,
    allocs: u64,
}

/// Populate a registry with `n` metrics (half counters, half histograms)
/// and touch each once so snapshots carry real data.
fn populated(n: usize) -> MetricsRegistry {
    let registry = MetricsRegistry::new();
    for k in 0..n / 2 {
        registry
            .counter(&format!("bench_counter_{k}_total"))
            .add(k as u64);
        registry
            .histogram(&format!("bench_hist_{k}_ns"))
            .record(1 << (k % 20));
    }
    registry
}

/// Gate 1: hot-loop writes through pre-created handles allocate nothing.
fn bench_handle_writes(n: usize, ops: u64, rows: &mut Vec<Row>) -> bool {
    let registry = populated(n);
    let counter = registry.counter("bench_counter_0_total");
    let hist = registry.histogram("bench_hist_0_ns");
    let mut ok = true;

    let before = allocs();
    let start = Instant::now();
    for i in 0..ops {
        counter.add(i & 1);
    }
    let counter_ns = start.elapsed().as_nanos() as f64 / ops as f64;
    let counter_allocs = allocs() - before;

    let before = allocs();
    let start = Instant::now();
    for i in 0..ops {
        hist.record(i);
    }
    let hist_ns = start.elapsed().as_nanos() as f64 / ops as f64;
    let hist_allocs = allocs() - before;

    for (label, ns, extra) in [
        ("counter_add", counter_ns, counter_allocs),
        ("histogram_record", hist_ns, hist_allocs),
    ] {
        if extra != 0 {
            eprintln!("metrics: GATE FAIL: {label} allocated {extra} times in {ops} ops");
            ok = false;
        }
        eprintln!("metrics: {label}/n{n}: {ns:.1} ns/op, {extra} allocs");
        rows.push(Row {
            name: format!("{label}/n{n}"),
            metrics: n,
            ns_per_op: ns,
            allocs: extra,
        });
    }
    ok
}

/// Snapshot cost at `n` registered metrics (allowed to allocate; reported).
fn bench_snapshot(n: usize, rows: &mut Vec<Row>) {
    let registry = populated(n);
    // Warm once so lazy setup does not land in the measured pass.
    let _ = registry.snapshot();
    let reps = 100u32;
    let before = allocs();
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(registry.snapshot());
    }
    let ns = start.elapsed().as_nanos() as f64 / f64::from(reps);
    let snap_allocs = (allocs() - before) / u64::from(reps);
    eprintln!("metrics: snapshot/n{n}: {ns:.0} ns, {snap_allocs} allocs");
    rows.push(Row {
        name: format!("snapshot/n{n}"),
        metrics: n,
        ns_per_op: ns,
        allocs: snap_allocs,
    });
}

/// One small protocol run with no registry attached anywhere.
fn run_without_metrics() -> u64 {
    let before = allocs();
    let ids: Vec<opr_types::OriginalId> = (1..=5)
        .map(|i| opr_types::OriginalId::new(i * 10))
        .collect();
    let run = RenamingRun::builder(
        SystemConfig::new(7, 2).expect("legal config"),
        Regime::LogTime,
    )
    .correct_ids(ids)
    .adversary(AdversarySpec::Silent, 2)
    .seed(0xbeef)
    .run()
    .expect("seed run is clean");
    std::hint::black_box(run.stats.rounds);
    allocs() - before
}

/// Gate 2: with the registry off, two identical runs allocate identically —
/// the instrumentation's disabled path is deterministic and free.
fn gate_registry_off(rows: &mut Vec<Row>) -> bool {
    // Warm-up absorbs one-time lazies (thread-local shard ids, etc.).
    let _ = run_without_metrics();
    let a = run_without_metrics();
    let b = run_without_metrics();
    eprintln!("metrics: registry-off run allocs: {a} vs {b}");
    rows.push(Row {
        name: "registry_off_run".to_string(),
        metrics: 0,
        ns_per_op: 0.0,
        allocs: a,
    });
    if a != b {
        eprintln!("metrics: GATE FAIL: registry-off runs allocated {a} vs {b}");
        return false;
    }
    true
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut ops = DEFAULT_OPS;
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--ops" => {
                ops = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }

    let mut rows = Vec::new();
    let mut ok = gate_registry_off(&mut rows);
    for n in SIZES {
        ok &= bench_handle_writes(n, ops, &mut rows);
        bench_snapshot(n, &mut rows);
    }

    if let Some(path) = out {
        let body: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "  {{\"group\": \"metrics\", \"name\": \"{}\", \"metrics\": {}, \
                     \"ns_per_op\": {:.1}, \"allocs\": {}}}",
                    r.name, r.metrics, r.ns_per_op, r.allocs
                )
            })
            .collect();
        let text = format!("[\n{}\n]\n", body.join(",\n"));
        match std::fs::write(&path, text) {
            Ok(()) => eprintln!("metrics: wrote {path}"),
            Err(e) => {
                eprintln!("metrics: could not write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if ok {
        eprintln!("metrics: all gates passed");
        std::process::exit(0);
    }
    std::process::exit(1);
}
