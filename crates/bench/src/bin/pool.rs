//! Round-engine benchmark: the task-scheduled `PooledBackend` vs the sim
//! reference and the thread-per-process backend at large N.
//!
//! ```text
//! cargo run --release -p opr-bench --bin pool -- --out crates/bench/BENCH_pool.json
//! ```
//!
//! Every process broadcasts a 64-bit ping each round — the O(N²)
//! messages-per-round traffic of the paper's synchronous model, with the
//! protocol cost stripped out so the engines are compared on delivery
//! machinery alone. Each engine executes the same `Job` (`R` all-to-all
//! rounds at N ∈ {128, 512, 1024}); the pooled backend additionally sweeps
//! worker counts {1, 4, 8}. Reported per engine: runs/sec, mean ns per run
//! and mean ns per round.
//!
//! The headline comparison is `pooled-w1` vs `threaded` at N = 128: the
//! worker pool replaces N OS threads and 3 barriers per round with at most
//! `workers` threads and 2 phase fences, so even serial pooled execution
//! should beat thread-per-process by a wide margin (the committed
//! `BENCH_pool.json` pins ≥5×). `--check` makes that gate an exit status
//! for CI.

use opr_sim::{Actor, Inbox, Outbox, Topology, WireSize};
use opr_transport::{BackendKind, Job, PooledBackend, Substrate};
use opr_types::Round;
use std::hint::black_box;
use std::time::Instant;

#[derive(Clone, Debug)]
struct Ping(u64);
impl WireSize for Ping {
    fn wire_bits(&self) -> u64 {
        64
    }
}

struct Pinger(u64);
impl Actor for Pinger {
    type Msg = Ping;
    type Output = u64;
    fn send(&mut self, _round: Round) -> Outbox<Ping> {
        Outbox::Broadcast(Ping(self.0))
    }
    fn deliver(&mut self, _round: Round, inbox: Inbox<Ping>) {
        self.0 = inbox.messages().map(|(_, m)| m.0).sum();
    }
    fn output(&self) -> Option<u64> {
        // Never outputs: the run always executes its full round budget.
        None
    }
}

const ROUNDS: u32 = 8;

fn job(n: usize) -> Job<Ping, u64> {
    let actors: Vec<Box<dyn Actor<Msg = Ping, Output = u64>>> =
        (0..n).map(|i| Box::new(Pinger(i as u64)) as _).collect();
    Job::new(actors, Topology::canonical(n), ROUNDS)
}

/// Host parallelism, recorded in every row so a consumer can tell a real
/// regression from a 1-core CI container where parallel backends cannot win.
fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

struct Row {
    name: String,
    n: usize,
    workers: Option<usize>,
    iterations: usize,
    mean_ns: f64,
}

impl Row {
    fn round_ns(&self) -> f64 {
        self.mean_ns / f64::from(ROUNDS)
    }
    fn runs_per_sec(&self) -> f64 {
        1e9 / self.mean_ns
    }
    fn json(&self) -> String {
        let workers = self.workers.map_or(String::from("null"), |w| w.to_string());
        format!(
            "  {{\"group\": \"pool\", \"name\": \"{}\", \"n\": {}, \"workers\": {workers}, \
             \"cpus\": {}, \"rounds\": {ROUNDS}, \"iterations\": {}, \"mean_ns\": {:.1}, \
             \"round_ns\": {:.1}, \"runs_per_sec\": {:.2}}}",
            self.name,
            self.n,
            host_cpus(),
            self.iterations,
            self.mean_ns,
            self.round_ns(),
            self.runs_per_sec(),
        )
    }
}

/// Times `iterations` fresh executions of the all-to-all job on `engine`,
/// checking each run actually did its O(N²·R) deliveries.
fn measure<S>(name: String, n: usize, workers: Option<usize>, iterations: usize, engine: S) -> Row
where
    S: Substrate<Ping, u64>,
{
    let expected_messages = (n * (n - 1)) as u64 * u64::from(ROUNDS);
    let start = Instant::now();
    for _ in 0..iterations {
        let report = engine.execute(job(n));
        assert_eq!(report.rounds_executed, ROUNDS);
        assert_eq!(report.metrics.messages_correct(), expected_messages);
        black_box(report.metrics.messages_correct());
    }
    let mean_ns = start.elapsed().as_nanos() as f64 / iterations as f64;
    let row = Row {
        name,
        n,
        workers,
        iterations,
        mean_ns,
    };
    eprintln!(
        "pool {}: {:.2} runs/sec, {:.0} ns/round ({} iters)",
        row.name,
        row.runs_per_sec(),
        row.round_ns(),
        row.iterations
    );
    row
}

/// Iteration counts scaled so the O(N²) sizes don't dominate wall-clock:
/// enough repeats at N=128 for a stable mean, fewer at N=1024.
fn iters(n: usize, slow_engine: bool) -> usize {
    let base = match n {
        0..=128 => 30,
        129..=512 => 8,
        _ => 3,
    };
    if slow_engine {
        (base / 3).max(1)
    } else {
        base
    }
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut check = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out_path = it.next(),
            "--check" => check = true,
            _ => {
                eprintln!("usage: pool [--out <path>] [--check]");
                std::process::exit(2);
            }
        }
    }

    let mut rows: Vec<Row> = Vec::new();
    for n in [128usize, 512, 1024] {
        rows.push(measure(
            format!("sim/N{n}"),
            n,
            None,
            iters(n, false),
            opr_transport::SimBackend,
        ));
        rows.push(measure(
            format!("threaded/N{n}"),
            n,
            None,
            iters(n, true),
            opr_transport::ThreadedBackend,
        ));
        for workers in [1usize, 4, 8] {
            rows.push(measure(
                format!("pooled-w{workers}/N{n}"),
                n,
                Some(workers),
                iters(n, false),
                PooledBackend::new(workers),
            ));
        }
    }

    // The headline number: serial pooled vs thread-per-process at N=128.
    let mean = |name: &str| {
        rows.iter()
            .find(|r| r.name == name)
            .map(|r| r.mean_ns)
            .expect("row measured")
    };
    let speedup = mean("threaded/N128") / mean("pooled-w1/N128");
    eprintln!("pool: pooled-w1 is {speedup:.1}x threaded at N=128");

    let mut lines: Vec<String> = rows.iter().map(Row::json).collect();
    lines.push(format!(
        "  {{\"group\": \"pool\", \"name\": \"speedup/pooled-w1-vs-threaded-N128\", \
         \"n\": 128, \"workers\": 1, \"cpus\": {}, \"speedup\": {speedup:.2}}}",
        host_cpus(),
    ));
    let json = format!("[\n{}\n]\n", lines.join(",\n"));

    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write benchmark output");
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
    // BackendKind::Pooled must route through the same engine this benchmark
    // exercised; a cheap smoke here keeps the flag wiring honest.
    let report = BackendKind::Pooled.execute(job(16));
    assert_eq!(report.rounds_executed, ROUNDS);

    if check && speedup < 5.0 {
        if host_cpus() == 1 {
            // Thread-per-process vs the pool is a parallelism comparison; on
            // a single hardware thread the gate measures scheduler luck, not
            // the engine. The rows (with "cpus": 1) are still written.
            eprintln!("pool: gate skipped: 1-cpu host, speedup {speedup:.1}x not held to >=5x");
        } else {
            eprintln!("pool: gate failed: expected >=5x over threaded at N=128, got {speedup:.1}x");
            std::process::exit(1);
        }
    }
}
