//! Regenerates every experiment table/figure series from DESIGN.md §3.
//!
//! Usage:
//!
//! ```text
//! cargo run -p opr-bench --bin tables            # all experiments, markdown
//! cargo run -p opr-bench --bin tables -- t1 f3   # a subset
//! cargo run -p opr-bench --bin tables -- --csv   # CSV instead of markdown
//! cargo run -p opr-bench --bin tables -- --backend threaded t1
//! ```
//!
//! `--backend` selects the execution substrate every experiment runs on
//! (default `sim`); results are identical on either, only the execution
//! strategy changes.

use opr_transport::BackendKind;
use opr_workload::experiments;
use opr_workload::ExperimentTable;

fn generate(id: &str) -> Option<ExperimentTable> {
    match id {
        "t1" => Some(experiments::t1::run()),
        "t2" => Some(experiments::t2::run()),
        "t3" => Some(experiments::t3::run()),
        "t4" => Some(experiments::t4::run()),
        "t5" => Some(experiments::t5::run()),
        "f1" => Some(experiments::f1::run()),
        "f2" => Some(experiments::f2::run()),
        "f3" => Some(experiments::f3::run()),
        "f4" => Some(experiments::f4::run()),
        "a1" => Some(experiments::a1::run()),
        "a2" => Some(experiments::a2::run()),
        "a3" => Some(experiments::a3::run()),
        "e1" => Some(experiments::e1::run()),
        _ => None,
    }
}

const ALL_IDS: [&str; 13] = [
    "t1", "t2", "t3", "t4", "t5", "f1", "f2", "f3", "f4", "a1", "a2", "a3", "e1",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    if let Some(pos) = args.iter().position(|a| a == "--backend") {
        match args.get(pos + 1).and_then(|v| BackendKind::parse(v)) {
            Some(kind) => BackendKind::set_process_default(kind),
            None => {
                eprintln!("--backend takes one of: sim, threaded");
                std::process::exit(2);
            }
        }
    }
    let mut skip_next = false;
    let requested: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--backend" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(String::as_str)
        .collect();
    let ids: Vec<&str> = if requested.is_empty() {
        ALL_IDS.to_vec()
    } else {
        requested
    };
    for id in ids {
        match generate(&id.to_lowercase()) {
            Some(table) => {
                if csv {
                    println!("# {} — {}", table.id, table.title);
                    println!("{}", table.to_csv());
                } else {
                    println!("{}", table.to_markdown());
                }
                println!();
            }
            None => {
                eprintln!("unknown experiment id {id:?}; known: {ALL_IDS:?}");
                std::process::exit(2);
            }
        }
    }
}
