//! Regenerates every experiment table/figure series from DESIGN.md §3.
//!
//! Usage:
//!
//! ```text
//! cargo run -p opr-bench --bin tables            # all experiments, markdown
//! cargo run -p opr-bench --bin tables -- t1 f3   # a subset
//! cargo run -p opr-bench --bin tables -- --csv   # CSV instead of markdown
//! cargo run -p opr-bench --bin tables -- --backend threaded t1
//! cargo run -p opr-bench --bin tables -- --jobs 4
//! ```
//!
//! `--backend` selects the execution substrate every experiment runs on
//! (default `sim`; `auto` picks per run size — sim below
//! `BackendKind::AUTO_CUTOVER` processes, pooled at or above); results are
//! identical on any backend, only the execution strategy changes. `--jobs` generates the requested experiments on
//! executor workers — tables still print in request order, byte-identical
//! to a serial run.

use opr_exec::RunPool;
use opr_transport::BackendKind;
use opr_workload::experiments;
use opr_workload::ExperimentTable;

fn generate(id: &str) -> Option<ExperimentTable> {
    match id {
        "t1" => Some(experiments::t1::run()),
        "t2" => Some(experiments::t2::run()),
        "t3" => Some(experiments::t3::run()),
        "t4" => Some(experiments::t4::run()),
        "t5" => Some(experiments::t5::run()),
        "f1" => Some(experiments::f1::run()),
        "f2" => Some(experiments::f2::run()),
        "f3" => Some(experiments::f3::run()),
        "f4" => Some(experiments::f4::run()),
        "a1" => Some(experiments::a1::run()),
        "a2" => Some(experiments::a2::run()),
        "a3" => Some(experiments::a3::run()),
        "e1" => Some(experiments::e1::run()),
        _ => None,
    }
}

const ALL_IDS: [&str; 13] = [
    "t1", "t2", "t3", "t4", "t5", "f1", "f2", "f3", "f4", "a1", "a2", "a3", "e1",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    if let Some(pos) = args.iter().position(|a| a == "--backend") {
        match args.get(pos + 1).map(String::as_str) {
            Some("auto") => BackendKind::set_process_auto(true),
            Some(label) if BackendKind::parse(label).is_some() => {
                BackendKind::set_process_default(BackendKind::parse(label).expect("checked"));
            }
            _ => {
                eprintln!("--backend takes one of: sim, threaded, pooled, auto");
                std::process::exit(2);
            }
        }
    }
    let mut jobs = 1usize;
    if let Some(pos) = args.iter().position(|a| a == "--jobs") {
        match args.get(pos + 1).and_then(|v| v.parse().ok()) {
            Some(n) => jobs = n,
            None => {
                eprintln!("--jobs takes a worker count");
                std::process::exit(2);
            }
        }
    }
    let mut skip_next = false;
    let requested: Vec<&str> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--backend" || *a == "--jobs" {
                skip_next = true;
                return false;
            }
            !a.starts_with("--")
        })
        .map(String::as_str)
        .collect();
    let ids: Vec<String> = if requested.is_empty() {
        ALL_IDS.iter().map(|id| id.to_string()).collect()
    } else {
        requested.iter().map(|id| id.to_lowercase()).collect()
    };
    for id in &ids {
        if !ALL_IDS.contains(&id.as_str()) {
            eprintln!("unknown experiment id {id:?}; known: {ALL_IDS:?}");
            std::process::exit(2);
        }
    }
    // Experiments are independent deterministic runs: generate on the pool,
    // print in request order (the pool reassembles results in submission
    // order, so output is byte-identical to a serial run).
    let pool = RunPool::new(jobs);
    let tasks: Vec<_> = ids
        .iter()
        .map(|id| {
            let id = id.clone();
            move || generate(&id).expect("ids validated above")
        })
        .collect();
    for table in pool
        .run_batch(tasks)
        .into_iter()
        .map(|result| result.unwrap_or_else(|panic| std::panic::panic_any(panic.message)))
    {
        if csv {
            println!("# {} — {}", table.id, table.title);
            println!("{}", table.to_csv());
        } else {
            println!("{}", table.to_markdown());
        }
        println!();
    }
}
