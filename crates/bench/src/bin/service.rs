//! Renaming-as-a-service driver: soak gate, throughput benchmark and
//! service-level Perfetto traces for the multi-tenant epoch engine.
//!
//! ```text
//! # Quickstart: a small seeded service run with an oracle verdict:
//! cargo run --release -p opr-bench --bin service
//!
//! # The CI soak gate: ≥1000 epochs across 4 shards with recycling,
//! # oracle-clean and bit-identical across --jobs {1,4} and every backend:
//! cargo run --release -p opr-bench --bin service -- --soak --epochs 1000
//!
//! # Throughput matrix (names-assigned/sec, shards × jobs × backend) into
//! # the committed benchmark file:
//! cargo run --release -p opr-bench --bin service -- --bench crates/bench/BENCH_service.json
//!
//! # Service-level wall-clock spans (admission / per-shard protocol /
//! # grant publication per epoch) as Chrome trace-event JSON for Perfetto:
//! cargo run --release -p opr-bench --bin service -- --perfetto service-trace.json
//!
//! # Replay a service repro captured by a failing soak or chaos smoke:
//! cargo run --release -p opr-bench --bin service -- --repro service-repro.json
//!
//! # Prometheus exposition of the run's metrics (wall + deterministic):
//! cargo run --release -p opr-bench --bin service -- --metrics out.prom
//!
//! # Live ANSI dashboard on stderr every few epochs:
//! cargo run --release -p opr-bench --bin service -- --watch
//! ```
//!
//! Every judged run carries a flight recorder: the last `--flight K`
//! (default 32) epoch summaries are dumped to stderr on any oracle
//! violation or failed run, so the run-up to a failure is visible without
//! re-running under instrumentation.
//!
//! Exit status: 0 on pass, 1 on gate failure, 2 on usage errors.

use opr_adversary::AdversarySpec;
use opr_metrics::{render_prometheus, shared_flight_recorder, MetricsRegistry};
use opr_obs::{render_trace_json, shared_span_log, RunLog};
use opr_service::{
    judge_ledger, ServiceConfig, ServiceObs, ServiceReport, ServiceRepro, ServiceSpec,
};
use opr_transport::BackendKind;
use opr_types::{Regime, SystemConfig};
use opr_workload::ServiceWorkload;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counting shim around [`System`] so bench rows can report allocation
/// counts alongside wall time (same pattern as the `fanout` bin).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Dashboard refresh period for `--watch`, in epochs.
const WATCH_EVERY: u64 = 5;

fn usage() -> ! {
    eprintln!(
        "usage: service [--seed S] [--epochs E] [--shards K] [--backend sim|threaded|pooled|auto]\n\
         \x20       service --soak [--seed S] [--epochs E] [--shards K] [--repro-out <file>]\n\
         \x20                                 oracle + determinism gate across jobs {{1,4}}\n\
         \x20                                 and every backend (exit 1 on failure)\n\
         \x20       service --bench <file>    names-assigned/sec matrix (shards x jobs x backend)\n\
         \x20       service --perfetto <file> export service-level spans as a Perfetto trace\n\
         \x20       service --repro <file>    replay a captured service failure\n\
         \x20       service --metrics <file>  write a Prometheus exposition of the run's metrics\n\
         \x20       service --watch           print the ANSI metrics dashboard every few epochs\n\
         \x20       service --flight <K>      flight-recorder ring size (default 32)"
    );
    std::process::exit(2);
}

struct Args {
    seed: u64,
    epochs: u64,
    shards: usize,
    soak: bool,
    bench: Option<String>,
    perfetto: Option<String>,
    repro: Option<String>,
    repro_out: String,
    metrics: Option<String>,
    watch: bool,
    flight: usize,
}

fn parse_args(raw: &[String]) -> Args {
    let mut args = Args {
        seed: 0x5eed,
        epochs: 1000,
        shards: 4,
        soak: false,
        bench: None,
        perfetto: None,
        repro: None,
        repro_out: "service-repro.json".to_string(),
        metrics: None,
        watch: false,
        flight: 32,
    };
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--epochs" => {
                args.epochs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--shards" => {
                args.shards = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--backend" => match it.next().map(String::as_str) {
                Some("auto") => BackendKind::set_process_auto(true),
                Some(label) => BackendKind::set_process_default(
                    BackendKind::parse(label).unwrap_or_else(|| usage()),
                ),
                None => usage(),
            },
            "--soak" => args.soak = true,
            "--bench" => args.bench = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--perfetto" => args.perfetto = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--repro" => args.repro = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--repro-out" => args.repro_out = it.next().cloned().unwrap_or_else(|| usage()),
            "--metrics" => args.metrics = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--watch" => args.watch = true,
            "--flight" => {
                args.flight = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    args
}

/// The canonical soak/demo spec: `(N, t) = (7, 2)` log-time instances with
/// 2 silent Byzantine actors, an open-loop workload over a 4000-client
/// universe with 1–3-epoch holds, shards and epochs from the flags.
fn soak_spec(
    seed: u64,
    epochs: u64,
    shards: usize,
    backend: BackendKind,
    jobs: usize,
) -> ServiceSpec {
    ServiceSpec {
        service: ServiceConfig {
            shards,
            epoch_cfg: SystemConfig::new(7, 2).expect("legal config"),
            regime: Regime::LogTime,
            byzantine: 2,
            adversary: AdversarySpec::Silent,
            backend,
            queue_capacity: 64,
            shard_span: 64,
            seed,
        },
        workload: ServiceWorkload {
            clients: 4000,
            epochs,
            arrivals_per_epoch: 4 * shards.max(1),
            max_hold: 3,
            seed: seed ^ 0x776f_726b,
        },
        jobs,
    }
}

/// Throughput spec: fault-free instances (`byzantine = 0`, so every slot
/// carries demand) over a million-client universe, demand matched to the
/// aggregate epoch capacity so every shard runs a full instance each epoch.
fn bench_spec(seed: u64, shards: usize, backend: BackendKind, jobs: usize) -> ServiceSpec {
    let arrivals = 7 * shards;
    ServiceSpec {
        service: ServiceConfig {
            shards,
            epoch_cfg: SystemConfig::new(7, 2).expect("legal config"),
            regime: Regime::LogTime,
            byzantine: 0,
            adversary: AdversarySpec::Silent,
            backend,
            queue_capacity: 2 * arrivals + 16,
            shard_span: 64,
            seed,
        },
        workload: ServiceWorkload {
            clients: 1_000_000,
            epochs: 120,
            arrivals_per_epoch: arrivals,
            max_hold: 2,
            seed: seed ^ 0x6265_6e63,
        },
        jobs,
    }
}

fn summarize(label: &str, spec: &ServiceSpec, report: &ServiceReport) {
    let a = report.admission;
    eprintln!(
        "service: {label}: {} epochs, {} grants, {} releases, {} recycled, backlog-rejects {} \
         (duplicates {}, unknown-releases {}, cancelled-pending {})",
        report.epochs,
        report.grants,
        report.releases,
        report.recycled,
        a.rejected_queue_full,
        a.rejected_duplicate,
        a.rejected_unknown_release,
        a.cancelled_pending,
    );
    let _ = spec;
}

fn write_repro(spec: &ServiceSpec, args: &Args) {
    let repro = ServiceRepro {
        spec: *spec,
        campaign_seed: args.seed,
        run_index: 0,
    };
    match std::fs::write(&args.repro_out, repro.to_json()) {
        Ok(()) => eprintln!("service: wrote {}", args.repro_out),
        Err(e) => eprintln!("service: could not write {}: {e}", args.repro_out),
    }
}

/// Runs one spec and judges its ledger; on violations, prints them, dumps
/// the flight recorder and writes a repro. Returns the report on success.
/// When `registry` is given the engine runs fully instrumented (and
/// `--watch` prints the dashboard as epochs pass).
fn run_judged(
    spec: &ServiceSpec,
    label: &str,
    args: &Args,
    registry: Option<&MetricsRegistry>,
) -> Result<ServiceReport, ()> {
    let flight = shared_flight_recorder(args.flight);
    let obs = ServiceObs {
        spans: None,
        metrics: registry.cloned(),
        flight: Some(flight.clone()),
        watch_every: (args.watch && registry.is_some()).then_some(WATCH_EVERY),
    };
    let report = match spec.run_observed(&obs) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("service: {label}: run failed: {e}");
            eprint!(
                "{}",
                flight.lock().expect("flight poisoned").render("run failed")
            );
            write_repro(spec, args);
            return Err(());
        }
    };
    let violations = judge_ledger(&spec.service, &report.ledger);
    if !violations.is_empty() {
        for (oracle, violation) in violations.iter().take(10) {
            eprintln!("service: {label}: [{oracle}] {violation}");
        }
        eprintln!(
            "service: {label}: {} oracle violation(s); writing repro",
            violations.len()
        );
        eprint!(
            "{}",
            flight
                .lock()
                .expect("flight poisoned")
                .render("oracle violation")
        );
        write_repro(spec, args);
        return Err(());
    }
    Ok(report)
}

/// Builds the registry when `--metrics` or `--watch` asked for one.
fn metrics_registry(args: &Args) -> Option<MetricsRegistry> {
    (args.metrics.is_some() || args.watch).then(MetricsRegistry::new)
}

/// Overlays the deterministic plane of `report` under the live registry's
/// snapshot (no double counting of names the engine tracked live) and
/// writes the merged Prometheus exposition to `--metrics <path>` if given.
fn write_metrics(args: &Args, registry: &MetricsRegistry, report: &ServiceReport) -> i32 {
    let Some(path) = &args.metrics else {
        return 0;
    };
    let mut snap = registry.snapshot();
    snap.merge_missing(&report.metrics_snapshot());
    let text = render_prometheus(&snap);
    match std::fs::write(path, &text) {
        Ok(()) => {
            eprintln!("service: wrote {path}");
            0
        }
        Err(e) => {
            eprintln!("service: could not write {path}: {e}");
            1
        }
    }
}

/// The soak gate: the reference run (sim, serial) must be oracle-clean and
/// actually recycle names, and every other execution strategy — jobs 4,
/// the threaded and pooled backends, and their jobs-4 combinations — must
/// reproduce it bit for bit.
fn soak(args: &Args) -> i32 {
    let reference_spec = soak_spec(args.seed, args.epochs, args.shards, BackendKind::Sim, 1);
    eprintln!(
        "service: soak: {} epochs x {} shards, seed {}",
        args.epochs, args.shards, args.seed
    );
    let start = Instant::now();
    let registry = metrics_registry(args);
    let Ok(reference) = run_judged(&reference_spec, "sim/jobs1", args, registry.as_ref()) else {
        return 1;
    };
    summarize("sim/jobs1", &reference_spec, &reference);
    if let Some(registry) = &registry {
        if write_metrics(args, registry, &reference) != 0 {
            return 1;
        }
    }
    if reference.recycled == 0 {
        eprintln!("service: soak: no name was ever recycled — the gate is vacuous");
        write_repro(&reference_spec, args);
        return 1;
    }
    for (backend, jobs) in [
        (BackendKind::Sim, 4),
        (BackendKind::Threaded, 1),
        (BackendKind::Threaded, 4),
        (BackendKind::Pooled, 1),
        (BackendKind::Pooled, 4),
    ] {
        let spec = soak_spec(args.seed, args.epochs, args.shards, backend, jobs);
        let label = format!("{}/jobs{jobs}", backend.label());
        let Ok(report) = run_judged(&spec, &label, args, None) else {
            return 1;
        };
        if report != reference {
            eprintln!("service: soak: {label} diverged from the sim/jobs1 reference");
            write_repro(&spec, args);
            return 1;
        }
    }
    eprintln!(
        "service: soak passed in {:.1}s (all strategies bit-identical, oracle-clean)",
        start.elapsed().as_secs_f64()
    );
    0
}

/// The throughput matrix: names-assigned/sec for shards × jobs × backend,
/// written in the workspace's BENCH row format.
fn bench(args: &Args, path: &str) -> i32 {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut rows = Vec::new();
    for backend in BackendKind::ALL {
        for shards in [1usize, 4, 8] {
            for jobs in [1usize, 4] {
                let spec = bench_spec(args.seed, shards, backend, jobs);
                let allocs_before = ALLOCS.load(Ordering::Relaxed);
                let start = Instant::now();
                let report = match run_judged(&spec, "bench", args, None) {
                    Ok(report) => report,
                    Err(()) => return 1,
                };
                let elapsed = start.elapsed().as_secs_f64();
                let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
                let names_per_sec = report.names_per_sec(elapsed);
                let allocs_per_grant = allocs as f64 / report.grants.max(1) as f64;
                eprintln!(
                    "service: bench {}/shards{shards}/jobs{jobs}: {} grants in {elapsed:.2}s \
                     ({names_per_sec:.0} names/sec, {allocs_per_grant:.0} allocs/grant)",
                    backend.label(),
                    report.grants,
                );
                rows.push(format!(
                    "  {{\"group\": \"service\", \"name\": \"{}/shards{shards}/jobs{jobs}\", \
                     \"backend\": \"{}\", \"shards\": {shards}, \"jobs\": {jobs}, \"cpus\": {cpus}, \
                     \"epochs\": {}, \"grants\": {}, \"recycled\": {}, \
                     \"names_per_sec\": {names_per_sec:.1}, \"allocs\": {allocs}, \
                     \"allocs_per_grant\": {allocs_per_grant:.1}}}",
                    backend.label(),
                    backend.label(),
                    report.epochs,
                    report.grants,
                    report.recycled,
                ));
            }
        }
    }
    let body = format!("[\n{}\n]\n", rows.join(",\n"));
    match std::fs::write(path, body) {
        Ok(()) => {
            eprintln!("service: wrote {path}");
            0
        }
        Err(e) => {
            eprintln!("service: could not write {path}: {e}");
            1
        }
    }
}

/// Runs a short service schedule with the span log attached and exports the
/// service-level timing (per-epoch admission / per-shard protocol / grant
/// publication spans) as Chrome trace-event JSON loadable in Perfetto.
fn perfetto(args: &Args, path: &str) -> i32 {
    let spec = soak_spec(
        args.seed,
        args.epochs.clamp(1, 8),
        args.shards,
        BackendKind::Sim,
        2,
    );
    let spans = shared_span_log();
    let report = match spec.run_with_spans(Some(spans.clone())) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("service: perfetto run failed: {e}");
            return 1;
        }
    };
    summarize("perfetto", &spec, &report);
    let spans = spans.lock().expect("span log poisoned").spans().to_vec();
    eprintln!("service: {} spans recorded", spans.len());
    // No protocol event stream here — the trace carries the wall lane only.
    let trace = render_trace_json(&RunLog::default(), Some(&spans));
    match std::fs::write(path, trace) {
        Ok(()) => {
            eprintln!("service: wrote {path}");
            0
        }
        Err(e) => {
            eprintln!("service: could not write {path}: {e}");
            1
        }
    }
}

fn replay(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("service: cannot read {path}: {e}");
            return 2;
        }
    };
    let repro = match ServiceRepro::from_json(&text) {
        Ok(repro) => repro,
        Err(e) => {
            eprintln!("service: {e}");
            return 2;
        }
    };
    let s = repro.spec.service;
    eprintln!(
        "service: replaying shards={} n={} t={} {} byz={} {} backend={} jobs={} \
         (campaign seed {}, run #{})",
        s.shards,
        s.epoch_cfg.n(),
        s.epoch_cfg.t(),
        opr_chaos::repro::regime_label(s.regime),
        s.byzantine,
        s.adversary.label(),
        s.backend.label(),
        repro.spec.jobs,
        repro.campaign_seed,
        repro.run_index,
    );
    match repro.replay() {
        Ok((report, violations)) => {
            eprintln!(
                "service: replay: {} grants, {} releases, {} recycled, {} violation(s)",
                report.grants,
                report.releases,
                report.recycled,
                violations.len()
            );
            for (oracle, violation) in violations.iter().take(10) {
                eprintln!("service: replay: [{oracle}] {violation}");
            }
            if violations.is_empty() {
                eprintln!("service: replay clean (fixed, or captured for determinism only)");
                0
            } else {
                eprintln!("service: failure reproduced");
                0
            }
        }
        Err(e) => {
            eprintln!("service: replay failed to run: {e}");
            1
        }
    }
}

/// The quickstart: one small seeded run, summarized and judged.
fn demo(args: &Args) -> i32 {
    // Epoch instances are N = 7 (`soak_spec`), so `--backend auto` resolves
    // against that size.
    let spec = soak_spec(
        args.seed,
        args.epochs.clamp(1, 50),
        args.shards,
        BackendKind::default_for(7),
        2,
    );
    let registry = metrics_registry(args);
    match run_judged(&spec, "demo", args, registry.as_ref()) {
        Ok(report) => {
            summarize("demo", &spec, &report);
            eprintln!("service: oracle-clean");
            if let Some(registry) = &registry {
                if write_metrics(args, registry, &report) != 0 {
                    return 1;
                }
            }
            0
        }
        Err(()) => 1,
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&raw);
    let exit = if let Some(path) = &args.repro {
        replay(path)
    } else if args.soak {
        soak(&args)
    } else if let Some(path) = args.bench.clone() {
        bench(&args, &path)
    } else if let Some(path) = args.perfetto.clone() {
        perfetto(&args, &path)
    } else {
        demo(&args)
    };
    std::process::exit(exit);
}
