//! Broadcast fan-out microbenchmark: payload allocations per broadcast
//! round, before vs after zero-copy sealing.
//!
//! ```text
//! cargo run --release -p opr-bench --bin fanout -- --out crates/bench/BENCH_fanout.json
//! ```
//!
//! Every process broadcasts a realistic `⟨AA, ranks⟩` vote (`Alg1Msg::Votes`
//! with `N` entries) each round — the steady-state traffic of Algorithm 1's
//! voting phase. Two delivery modes are compared on the reference sim
//! engine:
//!
//! * `shared` — [`Outbox::Broadcast`]: the engine seals the payload once and
//!   all `N` inbox slots share the allocation (the post-change path).
//! * `cloned` — [`Outbox::Multicast`] carrying one owned clone per link:
//!   the pre-change cost model, where fan-out deep-copied the payload into
//!   every slot.
//!
//! Allocation counting uses a `#[global_allocator]` shim around [`System`]
//! (no external crates), and differences two run lengths so construction
//! and first-round arena growth cancel exactly: with `ΔA = allocs(R₂) −
//! allocs(R₁)`, the steady-state cost is `ΔA / (R₂ − R₁)` per round, divided
//! by `N` senders to give *allocations per broadcast*. `shared` is flat in
//! `N`; `cloned` grows linearly.
//!
//! The `obs` group measures the protocol event recorder the same way: one
//! full Algorithm 1 run with the recorder off vs on. Two recorder-off runs
//! *bracket* the recorder-on run and must allocate bit-identically — a
//! disabled recorder that leaked any cost (lazy caches, growth amortized
//! across runs) would break the bracket. The on−off delta is the entire
//! price of telemetry, paid only when recording.

use opr_adversary::AdversarySpec;
use opr_core::Alg1Msg;
use opr_sim::{Actor, Inbox, Network, Outbox, Topology};
use opr_types::{LinkId, OriginalId, Rank, Regime, Round, SystemConfig};
use opr_workload::{IdDistribution, RenamingRun};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counts every heap allocation (including reallocations) made through the
/// global allocator. Deallocation is free to stay out of the hot path's way.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// One `Broadcast` per round: sealed once, shared by all slots.
    Shared,
    /// One owned clone per link per round: the pre-change cost model.
    Cloned,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Shared => "shared",
            Mode::Cloned => "cloned",
        }
    }
}

/// Broadcasts an `N`-entry vote every round and folds delivered votes into a
/// checksum (borrowing from the shared payloads; no per-delivery clone).
struct FanoutActor {
    n: usize,
    mode: Mode,
    payload: Vec<(OriginalId, Rank)>,
    checksum: u64,
}

impl FanoutActor {
    fn new(n: usize, mode: Mode) -> Self {
        FanoutActor {
            n,
            mode,
            payload: (0..n as u64)
                .map(|i| (OriginalId::new(i), Rank::new(i as f64)))
                .collect(),
            checksum: 0,
        }
    }
}

impl Actor for FanoutActor {
    type Msg = Alg1Msg;
    type Output = u64;

    fn send(&mut self, _round: Round) -> Outbox<Alg1Msg> {
        match self.mode {
            Mode::Shared => Outbox::Broadcast(Alg1Msg::Votes(self.payload.clone())),
            Mode::Cloned => Outbox::Multicast(
                (1..=self.n)
                    .map(|l| (LinkId::new(l), Alg1Msg::Votes(self.payload.clone())))
                    .collect(),
            ),
        }
    }

    fn deliver(&mut self, _round: Round, inbox: Inbox<Alg1Msg>) {
        for (_, msg) in inbox.messages() {
            if let Alg1Msg::Votes(entries) = msg {
                self.checksum += entries.len() as u64;
            }
        }
    }

    fn output(&self) -> Option<u64> {
        // Never outputs: the run always executes its full round budget.
        None
    }
}

fn build_net(n: usize, mode: Mode) -> Network<Alg1Msg, u64> {
    let actors: Vec<Box<dyn Actor<Msg = Alg1Msg, Output = u64>>> = (0..n)
        .map(|_| Box::new(FanoutActor::new(n, mode)) as Box<dyn Actor<Msg = Alg1Msg, Output = u64>>)
        .collect();
    Network::new(actors, Topology::seeded(n, 42))
}

/// Total allocations for a fresh network executing `rounds` rounds.
fn allocs_for(n: usize, mode: Mode, rounds: u32) -> u64 {
    let mut net = build_net(n, mode);
    let before = ALLOCS.load(Ordering::Relaxed);
    net.run(rounds);
    ALLOCS.load(Ordering::Relaxed) - before
}

struct Row {
    mode: Mode,
    n: usize,
    allocs_per_broadcast: f64,
    runs_per_sec: f64,
}

fn measure(n: usize, mode: Mode) -> Row {
    // Difference two run lengths so construction and first-round arena
    // growth cancel; what remains is the steady-state per-round cost.
    let (r1, r2) = (8u32, 40u32);
    let a1 = allocs_for(n, mode, r1);
    let a2 = allocs_for(n, mode, r2);
    let per_round = (a2.saturating_sub(a1)) as f64 / f64::from(r2 - r1);
    let allocs_per_broadcast = per_round / n as f64;

    // Wall-clock: full construct-and-run cycles per second, work-scaled so
    // big N doesn't dominate the benchmark's runtime.
    let iters = (200_000 / (n * n)).clamp(3, 64);
    let rounds = 32u32;
    let start = Instant::now();
    for _ in 0..iters {
        let mut net = build_net(n, mode);
        net.run(rounds);
    }
    let runs_per_sec = iters as f64 / start.elapsed().as_secs_f64();

    Row {
        mode,
        n,
        allocs_per_broadcast,
        runs_per_sec,
    }
}

/// Allocations and event count of one full Algorithm 1 run (`N = 16`,
/// `t = 3`, log-time schedule) with the recorder off or on.
fn renaming_allocs(record: bool) -> (u64, usize) {
    let cfg = SystemConfig::new(16, 3).expect("legal config");
    let ids = IdDistribution::SparseRandom.generate(13, 7);
    let mut run = RenamingRun::builder(cfg, Regime::LogTime)
        .correct_ids(ids)
        .adversary(AdversarySpec::EchoSplit, 3)
        .seed(9);
    if record {
        run = run.record_events();
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = run.run_diagnosed().expect("run starts");
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    let events = out.events.as_ref().map_or(0, |log| log.len());
    assert_eq!(record, out.events.is_some(), "recording follows the knob");
    (allocs, events)
}

/// The recorder-overhead rows, with the zero-cost-when-off assertion.
fn measure_obs(rows: &mut Vec<String>) {
    let (warmup, _) = renaming_allocs(false);
    let (off_before, _) = renaming_allocs(false);
    let (on, events) = renaming_allocs(true);
    let (off_after, _) = renaming_allocs(false);
    assert_eq!(
        off_before, off_after,
        "recorder-off runs must allocate bit-identically around a recorded run"
    );
    assert!(events > 0, "a recorded run emits events");
    assert!(
        on >= off_before,
        "recording cannot allocate less than not recording"
    );
    let overhead = on - off_before;
    eprintln!(
        "fanout obs/n16: recorder off {off_before} allocs (warmup {warmup}), \
         on {on} allocs, +{overhead} for {events} events"
    );
    rows.push(format!(
        "  {{\"group\": \"obs\", \"name\": \"recorder-off/n16\", \"n\": 16, \
         \"allocs_per_run\": {off_before}, \"events\": 0}}"
    ));
    rows.push(format!(
        "  {{\"group\": \"obs\", \"name\": \"recorder-on/n16\", \"n\": 16, \
         \"allocs_per_run\": {on}, \"events\": {events}, \"overhead_allocs\": {overhead}}}"
    ));
    measure_span_recording(rows);
}

/// Span recording through the `&'static str` API into a pre-sized log is
/// allocation-free: `Span` is `Copy` and no `String` is ever built. The
/// assertion here is the regression gate for that claim.
fn measure_span_recording(rows: &mut Vec<String>) {
    const SPANS: usize = 4096;
    let mut log = opr_obs::SpanLog::with_capacity(SPANS);
    let start = std::time::Instant::now();
    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..SPANS {
        log.record_indexed("bench span", i as u64, start);
    }
    let span_allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        span_allocs, 0,
        "recording {SPANS} spans into a pre-sized log must not allocate"
    );
    assert_eq!(log.spans().len(), SPANS);
    eprintln!("fanout obs/spans: {SPANS} spans recorded, {span_allocs} allocs");
    rows.push(format!(
        "  {{\"group\": \"obs\", \"name\": \"span-record/{SPANS}\", \"n\": {SPANS}, \
         \"allocs\": {span_allocs}}}"
    ));
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => out_path = it.next(),
            _ => {
                eprintln!("usage: fanout [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    let mut rows: Vec<String> = Vec::new();
    for n in [16usize, 64, 128] {
        for mode in [Mode::Cloned, Mode::Shared] {
            let row = measure(n, mode);
            eprintln!(
                "fanout {mode}/n{n}: {allocs:.1} allocs/broadcast-round, {rps:.1} runs/sec",
                mode = row.mode.label(),
                n = row.n,
                allocs = row.allocs_per_broadcast,
                rps = row.runs_per_sec,
            );
            rows.push(format!(
                "  {{\"group\": \"fanout\", \"name\": \"{mode}/n{n}\", \"mode\": \"{mode}\", \
                 \"n\": {n}, \"payload_entries\": {n}, \
                 \"allocs_per_broadcast_round\": {allocs:.2}, \"runs_per_sec\": {rps:.1}}}",
                mode = row.mode.label(),
                n = row.n,
                allocs = row.allocs_per_broadcast,
                rps = row.runs_per_sec,
            ));
        }
    }
    measure_obs(&mut rows);

    let json = format!("[\n{}\n]\n", rows.join(",\n"));

    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write benchmark output");
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
}
