//! Substrate benchmarks: raw simulator round throughput and the id-selection
//! flood, isolating the cost of the network engine from the algorithms.

use criterion::{criterion_group, criterion_main, Criterion};
use opr_rbcast::{FloodActor, FloodMsg, FloodResult};
use opr_sim::{Actor, Inbox, Network, Outbox, Topology, WireSize};
use opr_transport::{BackendKind, Job};
use opr_types::{OriginalId, Round};
use std::hint::black_box;

#[derive(Clone, Debug)]
struct Ping(u64);
impl WireSize for Ping {
    fn wire_bits(&self) -> u64 {
        64
    }
}

struct Pinger(u64);
impl Actor for Pinger {
    type Msg = Ping;
    type Output = u64;
    fn send(&mut self, _round: Round) -> Outbox<Ping> {
        Outbox::Broadcast(Ping(self.0))
    }
    fn deliver(&mut self, _round: Round, inbox: Inbox<Ping>) {
        self.0 = inbox.messages().map(|(_, m)| m.0).sum();
    }
    fn output(&self) -> Option<u64> {
        None
    }
}

fn bench_all_to_all_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim-rounds");
    for n in [8usize, 32, 128] {
        group.bench_function(format!("all-to-all/N{n}"), |b| {
            b.iter(|| {
                let actors: Vec<Box<dyn Actor<Msg = Ping, Output = u64>>> =
                    (0..n).map(|i| Box::new(Pinger(i as u64)) as _).collect();
                let mut net = Network::new(actors, Topology::canonical(n));
                for _ in 0..10 {
                    net.step();
                }
                black_box(net.metrics().messages_correct())
            });
        });
    }
    group.finish();
}

fn bench_id_selection_flood(c: &mut Criterion) {
    let mut group = c.benchmark_group("id-selection");
    for (n, t) in [(8usize, 2usize), (32, 10), (64, 21)] {
        group.bench_function(format!("flood/N{n}t{t}"), |b| {
            b.iter(|| {
                let actors: Vec<
                    Box<dyn Actor<Msg = FloodMsg<OriginalId>, Output = FloodResult<OriginalId>>>,
                > = (0..n)
                    .map(|i| {
                        Box::new(FloodActor::new(n, t, Some(OriginalId::new(i as u64 * 3)))) as _
                    })
                    .collect();
                let mut net = Network::new(actors, Topology::canonical(n));
                net.run(4);
                black_box(net.output_of(0))
            });
        });
    }
    group.finish();
}

/// Sim vs threaded on the same all-to-all job: what the barrier + channel
/// machinery costs (or buys) relative to the single-threaded reference at
/// each system size.
fn bench_backend_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate-backends");
    for n in [8usize, 32, 128] {
        for backend in BackendKind::ALL {
            group.bench_function(format!("{backend}/N{n}"), |b| {
                b.iter(|| {
                    let actors: Vec<Box<dyn Actor<Msg = Ping, Output = u64>>> =
                        (0..n).map(|i| Box::new(Pinger(i as u64)) as _).collect();
                    let report = backend.execute(Job::new(actors, Topology::canonical(n), 10));
                    black_box(report.metrics.messages_correct())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_all_to_all_rounds,
    bench_id_selection_flood,
    bench_backend_comparison
);
criterion_main!(benches);
