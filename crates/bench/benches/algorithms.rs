//! F5 — wall-clock scaling of every renaming implementation (whole
//! simulated runs, worst adversary where applicable).

use criterion::{criterion_group, criterion_main, Criterion};
use opr_bench::BenchPoint;
use std::hint::black_box;

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("renaming");
    for point in BenchPoint::standard() {
        group.bench_function(point.label(), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(point.execute(seed))
            });
        });
    }
    group.finish();
}

/// Scaling of Algorithm 1 in N at a fixed t-ratio — the headline cost curve.
fn bench_alg1_scaling(c: &mut Criterion) {
    use opr_adversary::AdversarySpec;
    use opr_types::SystemConfig;
    use opr_workload::{Algorithm, IdDistribution};

    let mut group = c.benchmark_group("alg1-scaling");
    for n in [8usize, 16, 32, 64] {
        let t = (n - 1) / 4;
        group.bench_function(format!("N{n}t{t}"), |b| {
            let cfg = SystemConfig::new(n, t).expect("legal");
            let ids = IdDistribution::SparseRandom.generate(n - t, 7);
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                black_box(
                    Algorithm::Alg1LogTime
                        .run(cfg, &ids, t, AdversarySpec::RankSkew, seed)
                        .expect("run"),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_alg1_scaling);
criterion_main!(benches);
