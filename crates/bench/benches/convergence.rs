//! Micro-benchmarks of the approximate-agreement machinery: one DLPSW
//! reduction, a full standalone AA round-trip, and one `approximate` voting
//! step of Algorithm 3.

use criterion::{criterion_group, criterion_main, Criterion};
use opr_aa::{reduce, OrderedMultiset};
use opr_core::ranks::{approximate, RankVector};
use opr_types::{OriginalId, Rank};
use std::collections::BTreeSet;
use std::hint::black_box;

fn bench_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduce");
    for (n, t) in [(16usize, 5usize), (64, 21), (256, 85)] {
        let votes: OrderedMultiset<Rank> = (0..n)
            .map(|i| Rank::new((i as f64 * 31.7) % 97.0))
            .collect();
        group.bench_function(format!("N{n}t{t}"), |b| {
            b.iter(|| black_box(reduce(&votes, t)))
        });
    }
    group.finish();
}

fn bench_approximate_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("approximate-step");
    for (n, t) in [(16usize, 5usize), (64, 21)] {
        // n processes each voting over an accepted set of n ids.
        let accepted: BTreeSet<OriginalId> = (0..n as u64).map(OriginalId::new).collect();
        let delta = 1.0 + 1.0 / (3.0 * (n + t) as f64);
        let mine = RankVector::from_accepted(&accepted, delta);
        let votes: Vec<RankVector> = (0..n)
            .map(|k| {
                accepted
                    .iter()
                    .enumerate()
                    .map(|(i, &id)| (id, Rank::new((i + 1) as f64 * delta + k as f64 * 1e-3)))
                    .collect()
            })
            .collect();
        group.bench_function(format!("N{n}t{t}"), |b| {
            b.iter(|| black_box(approximate(&mine, &accepted, &votes, n, t)))
        });
    }
    group.finish();
}

fn bench_is_valid(c: &mut Criterion) {
    let mut group = c.benchmark_group("is-valid");
    for n in [16usize, 64, 256] {
        let timely: BTreeSet<OriginalId> = (0..n as u64).map(OriginalId::new).collect();
        let delta = 1.0 + 1.0 / (3.0 * n as f64);
        let ranks = RankVector::from_accepted(&timely, delta);
        group.bench_function(format!("N{n}"), |b| {
            b.iter(|| black_box(ranks.is_valid(&timely, delta)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_reduce,
    bench_approximate_step,
    bench_is_valid
);
criterion_main!(benches);
