//! One OS thread per process, barrier-synchronized lock-step rounds.
//!
//! # Design
//!
//! Each process runs on its own thread and owns its actor. Links are
//! `std::sync::mpsc` channels — one receiving queue per process, with every
//! sender holding a clone of every queue's `Sender`. Queues carry
//! [`Sealed`] payloads, so a broadcast crosses all `N` threads as refcount
//! bumps on one shared allocation (which is why message types need `Sync`
//! here). A round is three barrier-delimited phases:
//!
//! 1. **Decide** — the barrier leader checks the round budget and whether
//!    every correct actor has decided, and publishes a stop flag.
//! 2. **Send** — every thread calls `Actor::send`, applies the transport
//!    [`FaultPlan`](crate::FaultPlan), counts metrics and pushes messages
//!    into the receivers' queues.
//! 3. **Deliver** — after the send barrier, every thread drains its own
//!    queue, sorts the round's messages in **canonical link-id order** and
//!    calls `Actor::deliver`.
//!
//! The canonical merge order is what makes the backend observationally
//! deterministic: thread scheduling can only permute the *arrival* order
//! within a round, and the sort erases exactly that. Metrics are summed
//! per round across senders (commutative), and trace events are tagged
//! `(round, sender, emission index)` and merge-sorted afterwards, so
//! outcomes, metrics and traces are bit-for-bit identical to
//! [`SimBackend`](crate::SimBackend)'s.
//!
//! # Panics
//!
//! A panic inside an actor is caught on its thread, the run is stopped at
//! the next round boundary, and the first panic payload is re-raised on the
//! caller's thread. Work other threads did in the partially-executed round
//! is discarded with the run. Malformed *sends* (out-of-range or duplicate
//! link labels, oversized payloads) are not panics: they are recorded as
//! [`MalformedSend`]s and dropped, exactly as in the reference backend.

use crate::substrate::{ExecutionReport, Job, Substrate};
use opr_obs::SharedSpanLog;
use opr_sim::{
    Actor, Inbox, Outbox, RoundMetrics, RunMetrics, Sealed, Trace, TraceEvent, WireSize,
};
use opr_types::{LinkId, MalformedKind, MalformedSend, ProcessIndex, Round};
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{mpsc, Arc, Barrier, Mutex};

/// Executes jobs with one OS thread per process over mpsc links,
/// reproducing [`SimBackend`](crate::SimBackend)'s observable behaviour
/// exactly.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadedBackend;

/// Shared coordination state between process threads.
struct Shared {
    barrier: Barrier,
    stop: AtomicBool,
    decided: Vec<AtomicBool>,
    executed: AtomicU32,
    panicked: AtomicBool,
    panic_message: Mutex<Option<String>>,
    correct: Vec<bool>,
    max_rounds: u32,
}

/// What each process thread hands back at join time.
struct ThreadReport<O> {
    output: Option<O>,
    per_round: Vec<RoundMetrics>,
    trace_events: Vec<(u32, u32, TraceEvent)>,
    malformed: Vec<MalformedSend>,
}

impl<M, O> Substrate<M, O> for ThreadedBackend
where
    M: Clone + Debug + WireSize + Send + Sync + 'static,
    O: Send + 'static,
{
    fn execute(&self, job: Job<M, O>) -> ExecutionReport<O> {
        let Job {
            actors,
            correct,
            topology,
            max_rounds,
            faults,
            trace_capacity,
            trace_mode,
            payload_cap,
            spans,
            metrics,
        } = job;
        let n = actors.len();
        assert!(n >= 1, "threaded backend needs at least one process");

        let shared = Arc::new(Shared {
            barrier: Barrier::new(n),
            stop: AtomicBool::new(false),
            decided: (0..n).map(|_| AtomicBool::new(false)).collect(),
            executed: AtomicU32::new(0),
            panicked: AtomicBool::new(false),
            panic_message: Mutex::new(None),
            correct,
            max_rounds,
        });
        let topology = Arc::new(topology);
        let faults = Arc::new(faults);

        let mut txs = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            // Queues carry sealed payloads: a broadcast crosses all N
            // threads as refcount bumps on one shared allocation.
            let (tx, rx) = mpsc::channel::<(LinkId, Sealed<M>)>();
            txs.push(tx);
            rxs.push(rx);
        }

        let mut handles = Vec::with_capacity(n);
        for (me, (actor, rx)) in actors.into_iter().zip(rxs).enumerate() {
            let shared = Arc::clone(&shared);
            let topology = Arc::clone(&topology);
            let faults = Arc::clone(&faults);
            let txs = txs.clone();
            let trace_enabled = trace_capacity.is_some();
            // The barrier leader (thread 0) owns round timing; wall spans and
            // round histograms are best-effort observability, not part of the
            // deterministic report.
            let spans = if me == 0 { spans.clone() } else { None };
            let round_hist = if me == 0 {
                metrics.as_ref().map(|m| {
                    m.histogram(&opr_metrics::labeled(
                        "opr_round_ns",
                        &[("backend", "threaded")],
                    ))
                })
            } else {
                None
            };
            let handle = std::thread::Builder::new()
                .name(format!("opr-proc-{me}"))
                .spawn(move || {
                    process_thread(
                        me,
                        actor,
                        rx,
                        txs,
                        shared,
                        topology,
                        faults,
                        trace_enabled,
                        payload_cap,
                        spans,
                        round_hist,
                    )
                })
                .expect("spawn process thread");
            handles.push(handle);
        }
        // The root senders must drop so queues close when threads finish.
        drop(txs);

        let mut outputs = Vec::with_capacity(n);
        let mut per_thread_metrics = Vec::with_capacity(n);
        let mut trace_events = Vec::new();
        let mut malformed = Vec::new();
        for (me, handle) in handles.into_iter().enumerate() {
            let report: ThreadReport<O> = handle.join().expect("process thread must not die");
            outputs.push(report.output);
            per_thread_metrics.push(report.per_round);
            trace_events.extend(
                report
                    .trace_events
                    .into_iter()
                    .map(|(round, seq, ev)| (round, me, seq, ev)),
            );
            malformed.extend(report.malformed);
        }
        // Each thread records its own malformed sends in round/occurrence
        // order; the stable sort interleaves threads into the reference
        // backend's (round, sender, occurrence) order.
        malformed.sort_by_key(|m: &MalformedSend| (m.round.number(), m.sender.index()));

        if shared.panicked.load(Ordering::SeqCst) {
            let msg = shared
                .panic_message
                .lock()
                .unwrap()
                .take()
                .unwrap_or_else(|| "actor panicked on a process thread".to_string());
            panic!("{msg}");
        }

        let rounds_executed = shared.executed.load(Ordering::SeqCst);
        let mut metrics = RunMetrics::new();
        for round_idx in 0..rounds_executed as usize {
            let mut merged = RoundMetrics::default();
            for thread_rounds in &per_thread_metrics {
                let rm = &thread_rounds[round_idx];
                merged.messages_correct += rm.messages_correct;
                merged.messages_faulty += rm.messages_faulty;
                merged.bits_correct += rm.bits_correct;
                merged.max_message_bits = merged.max_message_bits.max(rm.max_message_bits);
            }
            metrics.push_round(merged);
        }

        let trace = trace_capacity.map(|capacity| {
            trace_events.sort_by_key(|&(round, sender, seq, _)| (round, sender, seq));
            let mut trace = Trace::with_mode(capacity, trace_mode);
            for (_, _, _, event) in trace_events {
                trace.record(event);
            }
            trace.normalize();
            trace
        });

        let completed = shared
            .correct
            .iter()
            .zip(&shared.decided)
            .filter(|(&c, _)| c)
            .all(|(_, d)| d.load(Ordering::SeqCst));

        ExecutionReport {
            rounds_executed,
            completed,
            outputs,
            metrics,
            trace,
            malformed,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn process_thread<M, O>(
    me: usize,
    mut actor: Box<dyn Actor<Msg = M, Output = O>>,
    rx: mpsc::Receiver<(LinkId, Sealed<M>)>,
    txs: Vec<mpsc::Sender<(LinkId, Sealed<M>)>>,
    shared: Arc<Shared>,
    topology: Arc<opr_sim::Topology>,
    faults: Arc<crate::FaultPlan>,
    trace_enabled: bool,
    payload_cap: Option<u64>,
    spans: Option<SharedSpanLog>,
    round_hist: Option<opr_metrics::Histogram>,
) -> ThreadReport<O>
where
    M: Clone + Debug + WireSize,
{
    let n = txs.len();
    let sender = ProcessIndex::new(me);
    let is_correct = shared.correct[me];
    let mut round = Round::FIRST;
    let mut per_round: Vec<RoundMetrics> = Vec::new();
    let mut trace_events: Vec<(u32, u32, TraceEvent)> = Vec::new();
    let mut malformed: Vec<MalformedSend> = Vec::new();
    // Set when this actor panicked: the thread keeps participating in the
    // barrier protocol (so nobody deadlocks) but stops touching the actor.
    let mut poisoned = false;

    loop {
        // Phase 1: decide. Every thread's round-(r−1) writes (decided flags,
        // executed counter) happen-before the leader's read via the barrier.
        if shared.barrier.wait().is_leader() {
            let all_decided = shared
                .correct
                .iter()
                .zip(&shared.decided)
                .filter(|(&c, _)| c)
                .all(|(_, d)| d.load(Ordering::SeqCst));
            let exhausted = shared.executed.load(Ordering::SeqCst) >= shared.max_rounds;
            let panicked = shared.panicked.load(Ordering::SeqCst);
            shared
                .stop
                .store(all_decided || exhausted || panicked, Ordering::SeqCst);
        }
        shared.barrier.wait();
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let span_start = (spans.is_some() || round_hist.is_some()).then(std::time::Instant::now);

        // Phase 2: send.
        let mut round_metrics = RoundMetrics::default();
        if !poisoned {
            let result = catch_unwind(AssertUnwindSafe(|| {
                let outbox = actor.send(round);
                let mut seq = 0u32;
                let mut deliver_one =
                    |link: LinkId, msg: Sealed<M>, malformed: &mut Vec<MalformedSend>| {
                        // Cached inside the seal: computed once per payload,
                        // shared by the cap check, metrics and all N links
                        // of a broadcast.
                        let bits = msg.wire_bits();
                        if let Some(cap) = payload_cap {
                            if bits > cap {
                                malformed.push(MalformedSend {
                                    sender,
                                    round,
                                    kind: MalformedKind::OversizedPayload { bits, cap },
                                });
                                return;
                            }
                        }
                        if !faults.delivers(round, sender, link) {
                            return;
                        }
                        let receiver = topology.peer(sender, link);
                        let in_label = topology.incoming_label(receiver, sender);
                        let self_loop = receiver == sender;
                        if is_correct {
                            if !self_loop {
                                round_metrics.messages_correct += 1;
                                round_metrics.bits_correct += bits;
                            }
                            round_metrics.max_message_bits =
                                round_metrics.max_message_bits.max(bits);
                        } else if !self_loop {
                            round_metrics.messages_faulty += 1;
                        }
                        if trace_enabled {
                            trace_events.push((
                                round.number(),
                                seq,
                                TraceEvent {
                                    round,
                                    sender,
                                    receiver,
                                    link: in_label,
                                    message: msg.rendered().to_owned(),
                                },
                            ));
                        }
                        seq += 1;
                        txs[receiver.index()]
                            .send((in_label, msg))
                            .expect("receiver thread alive until the common stop");
                    };
                match outbox {
                    Outbox::Silent => {}
                    Outbox::Broadcast(msg) => {
                        // Seal once; the cross-thread fan-out is a refcount
                        // bump per queue, not a deep copy per link.
                        let sealed = Sealed::new(msg);
                        for l in 1..=n {
                            deliver_one(LinkId::new(l), sealed.clone(), &mut malformed);
                        }
                    }
                    Outbox::Multicast(entries) => {
                        let mut seen = vec![false; n];
                        for (link, msg) in entries {
                            if link.label() > n {
                                malformed.push(MalformedSend {
                                    sender,
                                    round,
                                    kind: MalformedKind::LinkOutOfRange {
                                        label: link.label(),
                                        n,
                                    },
                                });
                                continue;
                            }
                            if std::mem::replace(&mut seen[link.index()], true) {
                                malformed.push(MalformedSend {
                                    sender,
                                    round,
                                    kind: MalformedKind::DuplicateLink {
                                        label: link.label(),
                                    },
                                });
                                continue;
                            }
                            // Equivocation stays per-link owned: each entry
                            // is its own payload, sealed individually.
                            deliver_one(link, Sealed::new(msg), &mut malformed);
                        }
                    }
                }
            }));
            if let Err(payload) = result {
                record_panic(&shared, payload);
                poisoned = true;
            }
        }
        per_round.push(round_metrics);

        // Phase 3: all sends of this round are enqueued once every thread
        // passes this barrier; draining afterwards sees the whole round.
        shared.barrier.wait();
        let mut entries: Vec<(LinkId, Sealed<M>)> = rx.try_iter().collect();
        if !poisoned {
            entries.sort_by_key(|(l, _)| *l);
            let result = catch_unwind(AssertUnwindSafe(|| {
                actor.deliver(round, Inbox::from_sealed(entries));
                actor.output().is_some()
            }));
            match result {
                Ok(decided) => shared.decided[me].store(decided, Ordering::SeqCst),
                Err(payload) => {
                    record_panic(&shared, payload);
                    poisoned = true;
                }
            }
        }
        if me == 0 {
            shared.executed.store(round.number(), Ordering::SeqCst);
            if let Some(start) = span_start {
                if let Some(hist) = &round_hist {
                    hist.record(start.elapsed().as_nanos() as u64);
                }
                if let Some(log) = &spans {
                    log.lock()
                        .unwrap()
                        .record_indexed("round", u64::from(round.number()), start);
                }
            }
        }
        round = round.next();
    }

    let output = if poisoned {
        None
    } else {
        catch_unwind(AssertUnwindSafe(|| actor.output())).unwrap_or(None)
    };
    ThreadReport {
        output,
        per_round,
        trace_events,
        malformed,
    }
}

fn record_panic(shared: &Shared, payload: Box<dyn std::any::Any + Send>) {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "actor panicked on a process thread".to_string());
    let mut slot = shared.panic_message.lock().unwrap();
    if slot.is_none() {
        *slot = Some(msg);
    }
    shared.panicked.store(true, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::BackendKind;
    use crate::FaultPlan;
    use opr_sim::Topology;

    #[derive(Clone, Debug)]
    struct Num(u64);
    impl WireSize for Num {
        fn wire_bits(&self) -> u64 {
            64
        }
    }

    /// Broadcasts its value; decides the sum of round-1 values.
    struct Summer {
        value: u64,
        sum: Option<u64>,
    }
    impl Actor for Summer {
        type Msg = Num;
        type Output = u64;
        fn send(&mut self, _round: Round) -> Outbox<Num> {
            Outbox::Broadcast(Num(self.value))
        }
        fn deliver(&mut self, _round: Round, inbox: Inbox<Num>) {
            if self.sum.is_none() {
                self.sum = Some(inbox.messages().map(|(_, m)| m.0).sum());
            }
        }
        fn output(&self) -> Option<u64> {
            self.sum
        }
    }

    /// Per-link equivocator that never decides.
    struct Equivocator(usize);
    impl Actor for Equivocator {
        type Msg = Num;
        type Output = u64;
        fn send(&mut self, _round: Round) -> Outbox<Num> {
            Outbox::Multicast(
                (1..=self.0)
                    .map(|l| (LinkId::new(l), Num(1000 * l as u64)))
                    .collect(),
            )
        }
        fn deliver(&mut self, _round: Round, _inbox: Inbox<Num>) {}
        fn output(&self) -> Option<u64> {
            None
        }
    }

    fn summers(values: &[u64]) -> Vec<Box<dyn Actor<Msg = Num, Output = u64>>> {
        values
            .iter()
            .map(|&v| {
                Box::new(Summer {
                    value: v,
                    sum: None,
                }) as _
            })
            .collect()
    }

    #[test]
    fn matches_reference_backend_on_clean_runs() {
        for seed in 0..5u64 {
            let job = |_| Job::new(summers(&[3, 1, 4, 1, 5, 9]), Topology::seeded(6, seed), 4);
            let sim = BackendKind::Sim.execute(job(())).clone();
            let threaded = BackendKind::Threaded.execute(job(()));
            assert_eq!(sim.outputs, threaded.outputs, "seed {seed}");
            assert_eq!(sim.metrics, threaded.metrics, "seed {seed}");
            assert_eq!(sim.rounds_executed, threaded.rounds_executed);
            assert!(threaded.completed);
        }
    }

    #[test]
    fn matches_reference_backend_with_equivocator_and_faults() {
        let build = |_| {
            let mut actors = summers(&[10, 20, 30, 40]);
            actors.push(Box::new(Equivocator(5)));
            let correct = vec![true, true, true, true, false];
            Job::with_faulty(actors, correct, Topology::seeded(5, 42), 6).faults(
                FaultPlan::new()
                    .drop_message(0, LinkId::new(2), Round::new(1))
                    .silence_link_from(4, LinkId::new(1), Round::new(1)),
            )
        };
        let sim = BackendKind::Sim.execute(build(()));
        let threaded = BackendKind::Threaded.execute(build(()));
        assert_eq!(sim.outputs, threaded.outputs);
        assert_eq!(sim.metrics, threaded.metrics);
        assert_eq!(sim.completed, threaded.completed);
    }

    #[test]
    fn traces_are_identical_across_backends() {
        let job = |_| Job::new(summers(&[7, 8, 9]), Topology::seeded(3, 11), 2).trace(1000);
        let sim = BackendKind::Sim.execute(job(()));
        let threaded = BackendKind::Threaded.execute(job(()));
        let (st, tt) = (sim.trace.unwrap(), threaded.trace.unwrap());
        assert_eq!(st.events(), tt.events());
        assert_eq!(st.dropped(), tt.dropped());
    }

    #[test]
    fn respects_round_budget_without_deciders() {
        struct Never;
        impl Actor for Never {
            type Msg = Num;
            type Output = u64;
            fn send(&mut self, _round: Round) -> Outbox<Num> {
                Outbox::Silent
            }
            fn deliver(&mut self, _round: Round, _inbox: Inbox<Num>) {}
            fn output(&self) -> Option<u64> {
                None
            }
        }
        let actors: Vec<Box<dyn Actor<Msg = Num, Output = u64>>> =
            vec![Box::new(Never), Box::new(Never)];
        let report = ThreadedBackend.execute(Job::new(actors, Topology::canonical(2), 3));
        assert!(!report.completed);
        assert_eq!(report.rounds_executed, 3);
        assert_eq!(report.metrics.rounds_executed(), 3);
    }

    #[test]
    #[should_panic(expected = "deliberate actor failure")]
    fn actor_panics_propagate_to_the_caller() {
        struct Bomb;
        impl Actor for Bomb {
            type Msg = Num;
            type Output = u64;
            fn send(&mut self, _round: Round) -> Outbox<Num> {
                panic!("deliberate actor failure");
            }
            fn deliver(&mut self, _round: Round, _inbox: Inbox<Num>) {}
            fn output(&self) -> Option<u64> {
                None
            }
        }
        let actors: Vec<Box<dyn Actor<Msg = Num, Output = u64>>> = vec![
            Box::new(Bomb),
            Box::new(Summer {
                value: 0,
                sum: None,
            }),
        ];
        let _ = ThreadedBackend.execute(Job::new(actors, Topology::canonical(2), 3));
    }

    /// Sends one duplicate and one out-of-range link label every round.
    struct Sloppy;
    impl Actor for Sloppy {
        type Msg = Num;
        type Output = u64;
        fn send(&mut self, _round: Round) -> Outbox<Num> {
            Outbox::Multicast(vec![
                (LinkId::new(1), Num(1)),
                (LinkId::new(1), Num(2)),
                (LinkId::new(99), Num(3)),
            ])
        }
        fn deliver(&mut self, _round: Round, _inbox: Inbox<Num>) {}
        fn output(&self) -> Option<u64> {
            None
        }
    }

    #[test]
    fn malformed_sends_match_reference_backend_exactly() {
        let build = |_| {
            let mut actors = summers(&[10, 20, 30]);
            actors.push(Box::new(Sloppy));
            let correct = vec![true, true, true, false];
            Job::with_faulty(actors, correct, Topology::seeded(4, 7), 3).payload_cap(64)
        };
        let sim = BackendKind::Sim.execute(build(()));
        let threaded = BackendKind::Threaded.execute(build(()));
        assert!(!sim.malformed.is_empty());
        assert_eq!(sim.malformed, threaded.malformed);
        assert_eq!(sim.outputs, threaded.outputs);
        assert_eq!(sim.metrics, threaded.metrics);
    }

    #[test]
    fn payload_cap_matches_reference_backend() {
        // A 64-bit message against a 32-bit cap: every send is rejected on
        // both backends, in the same order.
        let build = |_| Job::new(summers(&[1, 2]), Topology::canonical(2), 2).payload_cap(32);
        let sim = BackendKind::Sim.execute(build(()));
        let threaded = BackendKind::Threaded.execute(build(()));
        assert_eq!(sim.malformed.len(), 4);
        assert_eq!(sim.malformed, threaded.malformed);
        assert_eq!(sim.outputs, threaded.outputs);
    }
}
