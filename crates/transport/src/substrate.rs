//! The substrate contract: what it means to execute a lock-step job.

use crate::faults::FaultPlan;
use crate::{PooledBackend, SimBackend, ThreadedBackend};
use opr_metrics::MetricsRegistry;
use opr_obs::SharedSpanLog;
use opr_sim::{Actor, RunMetrics, Topology, Trace, TraceMode, WireSize};
use opr_types::MalformedSend;
use std::fmt;
use std::fmt::Debug;

/// A complete lock-step execution: actors, their correctness mask, the
/// topology routing them, a round budget, and optional transport faults and
/// tracing. Consumed by [`Substrate::execute`].
pub struct Job<M, O> {
    /// One actor per process, in topology index order.
    pub actors: Vec<Box<dyn Actor<Msg = M, Output = O>>>,
    /// `correct[i]` — whether actor `i` counts toward termination detection
    /// and the `correct` metrics. Faulty actors still execute fully.
    pub correct: Vec<bool>,
    /// The full-mesh topology with per-process link labelling.
    pub topology: Topology,
    /// Maximum number of rounds to execute.
    pub max_rounds: u32,
    /// Transport-level faults applied below the actors.
    pub faults: FaultPlan,
    /// When `Some(cap)`, record up to `cap` delivery events.
    pub trace_capacity: Option<usize>,
    /// What a full trace buffer sacrifices (oldest vs. newest events).
    pub trace_mode: TraceMode,
    /// When `Some(cap)`, sends wider than `cap` bits are rejected and
    /// recorded as malformed instead of delivered.
    pub payload_cap: Option<u64>,
    /// When attached, backends record per-round wall-clock spans here.
    /// Wall timings are *not* part of the deterministic contract — they
    /// never appear in [`ExecutionReport`] equality checks.
    pub spans: Option<SharedSpanLog>,
    /// When attached, backends record per-round wall-clock timing
    /// histograms (`opr_round_ns{backend=...}`) and a round counter here.
    /// Like spans, these never enter [`ExecutionReport`] equality.
    pub metrics: Option<MetricsRegistry>,
}

impl<M, O> Job<M, O> {
    /// A job in which every actor is correct, with no transport faults and
    /// no tracing.
    ///
    /// # Panics
    ///
    /// Panics if the actor count differs from the topology size.
    pub fn new(
        actors: Vec<Box<dyn Actor<Msg = M, Output = O>>>,
        topology: Topology,
        max_rounds: u32,
    ) -> Self {
        let correct = vec![true; actors.len()];
        Job::with_faulty(actors, correct, topology, max_rounds)
    }

    /// A job with an explicit correctness mask.
    ///
    /// # Panics
    ///
    /// Panics if lengths are inconsistent with the topology.
    pub fn with_faulty(
        actors: Vec<Box<dyn Actor<Msg = M, Output = O>>>,
        correct: Vec<bool>,
        topology: Topology,
        max_rounds: u32,
    ) -> Self {
        assert_eq!(
            actors.len(),
            topology.n(),
            "actor count must match topology"
        );
        assert_eq!(actors.len(), correct.len(), "mask must cover every actor");
        Job {
            actors,
            correct,
            topology,
            max_rounds,
            faults: FaultPlan::default(),
            trace_capacity: None,
            trace_mode: TraceMode::KeepFirst,
            payload_cap: None,
            spans: None,
            metrics: None,
        }
    }

    /// Attaches a transport-level fault plan.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enables delivery tracing with the given event capacity.
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Selects which events a full trace buffer keeps.
    pub fn trace_mode(mut self, mode: TraceMode) -> Self {
        self.trace_mode = mode;
        self
    }

    /// Attaches a wall-clock span log; backends record one span per round.
    pub fn spans(mut self, spans: SharedSpanLog) -> Self {
        self.spans = Some(spans);
        self
    }

    /// Attaches a metrics registry; backends record per-round wall-clock
    /// histograms into it (wall plane only — never golden-pinned).
    pub fn metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Caps message payloads at `cap` wire bits; wider sends are recorded
    /// as [`MalformedSend`]s and dropped instead of delivered.
    pub fn payload_cap(mut self, cap: u64) -> Self {
        self.payload_cap = Some(cap);
        self
    }
}

/// Everything observable from one execution, identical across backends for
/// the same [`Job`].
#[derive(Clone, Debug)]
pub struct ExecutionReport<O> {
    /// Rounds actually executed.
    pub rounds_executed: u32,
    /// Whether every correct actor produced an output within the budget.
    pub completed: bool,
    /// Final outputs of all actors (faulty included), in index order.
    pub outputs: Vec<Option<O>>,
    /// Per-round message/bit counters.
    pub metrics: RunMetrics,
    /// The delivery trace, if the job requested one.
    pub trace: Option<Trace>,
    /// Sends the transport rejected (out-of-range or duplicate link labels,
    /// oversized payloads), in `(round, sender, occurrence)` order — the
    /// same order on every backend.
    pub malformed: Vec<MalformedSend>,
}

/// A lock-step execution substrate: consumes a [`Job`], runs it round by
/// round (all sends, then all deliveries, in lock-step), and reports what
/// happened.
///
/// Implementations must be *observationally deterministic*: for a fixed job
/// (same actors, topology, budget, faults), the report — outcomes, rounds,
/// metrics, trace — must not depend on scheduling. The cross-backend
/// equivalence tests hold every backend to [`SimBackend`]'s reference
/// semantics.
pub trait Substrate<M, O> {
    /// Executes the job to completion or round-budget exhaustion.
    fn execute(&self, job: Job<M, O>) -> ExecutionReport<O>;
}

/// Backend selection, e.g. from a `--backend` CLI flag.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Single-threaded deterministic simulator (the reference).
    Sim,
    /// One OS thread per process, barrier-synchronized rounds.
    Threaded,
    /// Fixed worker pool executing round-steps as tasks over a flat inbox
    /// slab — the scalable engine for large N.
    Pooled,
}

/// The process-wide default backend; see [`BackendKind::set_process_default`].
static PROCESS_DEFAULT: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// Whether the process default is in *auto* mode; see
/// [`BackendKind::set_process_auto`].
static PROCESS_AUTO: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

impl Default for BackendKind {
    /// The process default: [`BackendKind::Sim`] unless a binary overrode it
    /// via [`BackendKind::set_process_default`] (e.g. a `--backend` flag).
    fn default() -> Self {
        BackendKind::from_tag(PROCESS_DEFAULT.load(std::sync::atomic::Ordering::Relaxed))
    }
}

impl BackendKind {
    /// Every backend, reference first.
    pub const ALL: [BackendKind; 3] =
        [BackendKind::Sim, BackendKind::Threaded, BackendKind::Pooled];

    /// System sizes strictly below this run faster on the single-threaded
    /// simulator than on the worker pool (task dispatch + slab setup dominate
    /// at small N); at and above it the pool's parallel round-steps win.
    /// Measured on the `pool` bench group; see BENCH_pool.json.
    pub const AUTO_CUTOVER: u32 = 256;

    /// Picks the backend for a run of `n` processes: [`BackendKind::Sim`]
    /// below [`BackendKind::AUTO_CUTOVER`], [`BackendKind::Pooled`] at or
    /// above it. Backends are observationally equivalent, so this is purely
    /// a wall-clock heuristic.
    pub fn auto_for(n: u32) -> BackendKind {
        if n < BackendKind::AUTO_CUTOVER {
            BackendKind::Sim
        } else {
            BackendKind::Pooled
        }
    }

    /// The stable atomic discriminant used by the process-default cell. The
    /// exhaustive match is the point: adding a variant without assigning it
    /// a distinct tag is a compile error, not a silent alias of `Sim`.
    const fn tag(self) -> u8 {
        match self {
            BackendKind::Sim => 0,
            BackendKind::Threaded => 1,
            BackendKind::Pooled => 2,
        }
    }

    /// Inverse of [`BackendKind::tag`]; unknown tags fall back to the
    /// reference backend (the cell starts at `Sim`'s tag anyway).
    fn from_tag(tag: u8) -> BackendKind {
        BackendKind::ALL
            .into_iter()
            .find(|kind| kind.tag() == tag)
            .unwrap_or(BackendKind::Sim)
    }

    /// Overrides what `BackendKind::default()` returns for the rest of the
    /// process. Intended for binaries translating a `--backend` flag once at
    /// startup, so every run that doesn't pick a backend explicitly (the
    /// experiment tables, default options) executes on the chosen substrate.
    /// Backends are observationally equivalent, so this changes how runs
    /// execute, never what they produce.
    pub fn set_process_default(kind: BackendKind) {
        PROCESS_DEFAULT.store(kind.tag(), std::sync::atomic::Ordering::Relaxed);
    }

    /// Puts the process default in *auto* mode (`--backend auto`): entry
    /// points that know their system size and consult
    /// [`BackendKind::default_for`] get [`BackendKind::auto_for`]'s pick
    /// instead of the fixed process default.
    pub fn set_process_auto(on: bool) {
        PROCESS_AUTO.store(on, std::sync::atomic::Ordering::Relaxed);
    }

    /// The process-default backend for a run of `n` processes:
    /// [`BackendKind::auto_for`] when auto mode is on
    /// ([`BackendKind::set_process_auto`]), the fixed
    /// [`BackendKind::default`] otherwise.
    pub fn default_for(n: usize) -> BackendKind {
        if PROCESS_AUTO.load(std::sync::atomic::Ordering::Relaxed) {
            BackendKind::auto_for(u32::try_from(n).unwrap_or(u32::MAX))
        } else {
            BackendKind::default()
        }
    }

    /// Stable label (accepted by [`BackendKind::parse`]).
    pub fn label(&self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Threaded => "threaded",
            BackendKind::Pooled => "pooled",
        }
    }

    /// Parses a label as produced by [`BackendKind::label`].
    pub fn parse(s: &str) -> Option<BackendKind> {
        BackendKind::ALL.into_iter().find(|b| b.label() == s)
    }

    /// Executes `job` on the selected backend.
    pub fn execute<M, O>(&self, job: Job<M, O>) -> ExecutionReport<O>
    where
        M: Clone + Debug + WireSize + Send + Sync + 'static,
        O: Send + 'static,
    {
        match self {
            BackendKind::Sim => SimBackend.execute(job),
            BackendKind::Threaded => ThreadedBackend.execute(job),
            BackendKind::Pooled => PooledBackend::default().execute(job),
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(BackendKind::parse("fpga"), None);
    }

    #[test]
    fn tags_are_distinct_and_round_trip() {
        let mut seen = std::collections::BTreeSet::new();
        for kind in BackendKind::ALL {
            assert!(seen.insert(kind.tag()), "{kind}: tag collision");
            assert_eq!(BackendKind::from_tag(kind.tag()), kind);
        }
        assert_eq!(BackendKind::from_tag(200), BackendKind::Sim);
    }

    /// Pins the auto-selection cutover: changing `AUTO_CUTOVER` (or the
    /// mapping around it) should be a deliberate, test-visible decision.
    #[test]
    fn auto_cutover_picks_sim_small_pooled_large() {
        assert_eq!(BackendKind::auto_for(0), BackendKind::Sim);
        assert_eq!(BackendKind::auto_for(64), BackendKind::Sim);
        assert_eq!(
            BackendKind::auto_for(BackendKind::AUTO_CUTOVER - 1),
            BackendKind::Sim
        );
        assert_eq!(
            BackendKind::auto_for(BackendKind::AUTO_CUTOVER),
            BackendKind::Pooled
        );
        assert_eq!(BackendKind::auto_for(1024), BackendKind::Pooled);
    }

    /// One test covers both the initial default and the override round-trip:
    /// they share the process-wide cell, so probing them in sequence (and
    /// restoring `Sim`) avoids a race between parallel `#[test]`s.
    #[test]
    fn default_is_the_reference_backend_and_overrides_round_trip() {
        assert_eq!(BackendKind::default(), BackendKind::Sim);
        for kind in BackendKind::ALL {
            BackendKind::set_process_default(kind);
            assert_eq!(BackendKind::default(), kind);
        }
        BackendKind::set_process_default(BackendKind::Sim);
        assert_eq!(BackendKind::default(), BackendKind::Sim);
    }
}
