#![warn(missing_docs)]
//! Pluggable lock-step execution substrates.
//!
//! Every protocol in this workspace is written against the
//! [`Actor`](opr_sim::Actor) contract: `send`, route, `deliver`, one
//! synchronous round at a time. This crate makes *where that contract
//! executes* a first-class choice:
//!
//! * [`SimBackend`] — the deterministic single-threaded engine
//!   ([`opr_sim::Network`]) the experiments were born on. Zero concurrency,
//!   bit-for-bit reproducible, the reference semantics.
//! * [`ThreadedBackend`] — one OS thread per process, `std::sync::mpsc`
//!   links and a [`std::sync::Barrier`] round synchronizer. Real parallelism
//!   across processes within a round, while inboxes are merged in canonical
//!   link-id order so a given seed produces **identical**
//!   outcomes, traces and [`RunMetrics`](opr_sim::RunMetrics) on both
//!   backends.
//! * [`PooledBackend`] — a fixed worker pool executing actor round-steps as
//!   tasks over a flat slab of inbox slots, with two phase fences per round.
//!   The scalable engine for N ≥ 1024: no per-process threads, no
//!   per-process channels, same observable behaviour bit-for-bit at any
//!   worker count.
//!
//! The substrate boundary is also where the model's link-anonymity lives:
//! receivers observe *link labels*, never sender identities, on every
//! backend. And it is the natural place for faults *below* the adversary
//! layer — [`FaultPlan`] drops or silences chosen links per round at the
//! transport itself, regardless of what the (possibly Byzantine) actor
//! above tried to send.
//!
//! # Example: one job, two substrates, equal results
//!
//! ```
//! use opr_transport::{BackendKind, Job};
//! use opr_sim::{Actor, Inbox, Outbox, Topology, WireSize};
//! use opr_types::Round;
//!
//! #[derive(Clone, Debug)]
//! struct Ping(u64);
//! impl WireSize for Ping {
//!     fn wire_bits(&self) -> u64 { 64 }
//! }
//! struct Echo(u64, Option<u64>);
//! impl Actor for Echo {
//!     type Msg = Ping;
//!     type Output = u64;
//!     fn send(&mut self, _r: Round) -> Outbox<Ping> { Outbox::Broadcast(Ping(self.0)) }
//!     fn deliver(&mut self, _r: Round, inbox: Inbox<Ping>) {
//!         self.1 = Some(inbox.messages().map(|(_, m)| m.0).sum());
//!     }
//!     fn output(&self) -> Option<u64> { self.1 }
//! }
//!
//! let job = |_| Job::new(
//!     (0..4u64).map(|v| Box::new(Echo(v, None)) as Box<dyn Actor<Msg = Ping, Output = u64>>)
//!         .collect(),
//!     Topology::seeded(4, 7),
//!     5,
//! );
//! let sim = BackendKind::Sim.execute(job(()));
//! let threaded = BackendKind::Threaded.execute(job(()));
//! assert_eq!(sim.outputs, threaded.outputs);
//! assert_eq!(sim.metrics, threaded.metrics);
//! ```

pub mod faults;
pub mod pooled;
pub mod sim_backend;
pub mod substrate;
pub mod threaded;

pub use faults::{FaultEvent, FaultPlan};
pub use pooled::PooledBackend;
pub use sim_backend::SimBackend;
pub use substrate::{BackendKind, ExecutionReport, Job, Substrate};
pub use threaded::ThreadedBackend;
