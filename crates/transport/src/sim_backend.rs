//! The reference substrate: an adapter over the deterministic
//! single-threaded [`opr_sim::Network`].

use crate::substrate::{ExecutionReport, Job, Substrate};
use opr_sim::{Network, WireSize};
use std::fmt::Debug;

/// Executes jobs on [`opr_sim::Network`] — single-threaded, bit-for-bit
/// reproducible, the semantics every other backend must match.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimBackend;

impl<M, O> Substrate<M, O> for SimBackend
where
    M: Clone + Debug + WireSize,
{
    fn execute(&self, job: Job<M, O>) -> ExecutionReport<O> {
        let Job {
            actors,
            correct,
            topology,
            max_rounds,
            faults,
            trace_capacity,
            trace_mode,
            payload_cap,
            spans,
            metrics,
        } = job;
        let mut net = Network::with_faults(actors, correct, topology);
        if let Some(capacity) = trace_capacity {
            net.enable_trace_mode(capacity, trace_mode);
        }
        net.set_payload_cap(payload_cap);
        if !faults.is_empty() {
            net.set_delivery_filter(Box::new(move |round, sender, link| {
                faults.delivers(round, sender, link)
            }));
        }
        let round_hist = metrics
            .as_ref()
            .map(|m| m.histogram(&opr_metrics::labeled("opr_round_ns", &[("backend", "sim")])));
        let report = if spans.is_none() && round_hist.is_none() {
            net.run(max_rounds)
        } else {
            // Network::run is cumulative, so raising the budget by one
            // round at a time yields per-round timings without touching
            // the engine's semantics.
            let mut report = net.run(0);
            for budget in 1..=max_rounds {
                let start = std::time::Instant::now();
                report = net.run(budget);
                if report.rounds_executed == budget {
                    if let Some(hist) = &round_hist {
                        hist.record(start.elapsed().as_nanos() as u64);
                    }
                    if let Some(log) = &spans {
                        log.lock()
                            .unwrap()
                            .record_indexed("round", u64::from(budget), start);
                    }
                }
                if report.completed {
                    break;
                }
            }
            report
        };
        net.normalize_trace();
        ExecutionReport {
            rounds_executed: report.rounds_executed,
            completed: report.completed,
            outputs: net.outputs(),
            metrics: net.metrics().clone(),
            trace: net.trace().cloned(),
            malformed: net.malformed_sends().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;
    use opr_sim::{Actor, Inbox, Outbox, Topology};
    use opr_types::{LinkId, Round};

    #[derive(Clone, Debug)]
    struct Num(#[allow(dead_code)] u64);
    impl WireSize for Num {
        fn wire_bits(&self) -> u64 {
            64
        }
    }

    struct Counter {
        seen: u64,
        done: Option<u64>,
    }
    impl Actor for Counter {
        type Msg = Num;
        type Output = u64;
        fn send(&mut self, _round: Round) -> Outbox<Num> {
            Outbox::Broadcast(Num(1))
        }
        fn deliver(&mut self, round: Round, inbox: Inbox<Num>) {
            self.seen += inbox.len() as u64;
            if round.number() == 2 {
                self.done = Some(self.seen);
            }
        }
        fn output(&self) -> Option<u64> {
            self.done
        }
    }

    fn counters(n: usize) -> Vec<Box<dyn Actor<Msg = Num, Output = u64>>> {
        (0..n)
            .map(|_| {
                Box::new(Counter {
                    seen: 0,
                    done: None,
                }) as _
            })
            .collect()
    }

    #[test]
    fn runs_to_completion_and_reports() {
        let report = SimBackend.execute(Job::new(counters(3), Topology::canonical(3), 5));
        assert!(report.completed);
        assert_eq!(report.rounds_executed, 2);
        // Every actor saw 3 messages per round (2 peers + self-loop).
        assert_eq!(report.outputs, vec![Some(6), Some(6), Some(6)]);
        assert_eq!(report.metrics.messages_correct(), 2 * 3 * 2);
    }

    #[test]
    fn fault_plan_removes_deliveries_and_metrics() {
        let clean = SimBackend.execute(Job::new(counters(3), Topology::canonical(3), 5));
        let faulty =
            SimBackend.execute(
                Job::new(counters(3), Topology::canonical(3), 5)
                    .faults(FaultPlan::new().drop_message(0, LinkId::new(1), Round::new(1))),
            );
        assert_eq!(
            faulty.metrics.messages_correct(),
            clean.metrics.messages_correct() - 1
        );
        // Process 0's link 1 in the canonical topology points at process 1,
        // which therefore saw one message fewer.
        assert_eq!(faulty.outputs[1], Some(5));
        assert_eq!(faulty.outputs[2], Some(6));
    }

    #[test]
    fn trace_capacity_is_honoured() {
        let report = SimBackend.execute(Job::new(counters(2), Topology::canonical(2), 5).trace(3));
        let trace = report.trace.expect("trace requested");
        assert_eq!(trace.events().len(), 3);
        assert!(trace.dropped() > 0);
    }
}
