//! Task-scheduled lock-step rounds on a fixed worker pool.
//!
//! # Design
//!
//! [`ThreadedBackend`](crate::ThreadedBackend) pays for one OS thread per
//! process and three barrier crossings per round — at N = 1024 that is a
//! thousand threads ticking in lock-step, and `BENCH_substrate.json` shows
//! it 14–46× slower than the sim. `PooledBackend` keeps the observable
//! contract and drops both costs: a fixed [`RunPool`] of workers (reused
//! across rounds) executes actor round-steps as *tasks*, and the N `mpsc`
//! inboxes collapse into one flat, preallocated SoA slab of
//! `Option<Sealed<M>>` slots indexed by `(sender, receiver)`.
//!
//! A round is two pool-wide phase fences:
//!
//! 1. **Send** — one task per process. The task owns its actor and its slab
//!    *row* for the round; it calls `Actor::send`, applies the transport
//!    [`FaultPlan`](crate::FaultPlan) and payload cap, counts metrics, and
//!    writes each surviving message into `row[receiver]` (a broadcast is one
//!    [`Sealed`] allocation; every slot write is a refcount bump). The batch
//!    fence ([`RunPool::run_batch`] returning) is the point at which *all*
//!    sends of the round exist.
//! 2. **Deliver** — the rows are frozen into an `Arc` slab shared by one
//!    task per process. Receiver `r` walks its in-links `1..=n` in label
//!    order, reads `slab[peer(r, l)][r]`, and hands the inbox to
//!    `Actor::deliver`. After the fence the coordinator reclaims the slab
//!    (`Arc::try_unwrap`), clears the rows and reuses them next round —
//!    steady-state allocation is per-message, never per-link.
//!
//! Determinism does not rest on scheduling: every task writes only to slots
//! owned by (or indexed by) its own process, the coordinator aggregates
//! metrics, traces and malformed sends in process-index order, and the
//! deliver walk reads links in canonical label order — the same order the
//! sim produces and the threaded backend sorts into. Task interleaving can
//! only change *when* a slot is written within a fence, never *what* any
//! actor observes, so outcomes, metrics, traces and telemetry event streams
//! are bit-for-bit identical to [`SimBackend`](crate::SimBackend)'s at any
//! worker count.
//!
//! # Panics
//!
//! A panic inside an actor is contained per task by the pool
//! ([`opr_exec::TaskPanic`]); the run stops at the current phase fence and
//! the lowest-index panic payload is re-raised on the caller's thread,
//! matching the threaded backend's observable behaviour (the report of a
//! panicked run is never observable on either backend). Malformed sends are
//! not panics: they are recorded and dropped exactly as in the reference.

use crate::substrate::{ExecutionReport, Job, Substrate};
use opr_exec::RunPool;
use opr_sim::{
    Actor, Inbox, Outbox, RoundMetrics, RunMetrics, Sealed, Topology, Trace, TraceEvent, WireSize,
};
use opr_types::{LinkId, MalformedKind, MalformedSend, ProcessIndex, Round};
use std::fmt::Debug;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The process-wide default worker count; see
/// [`PooledBackend::set_process_default_workers`]. `0` means "auto".
static DEFAULT_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Executes jobs as tasks on a fixed worker pool over a flat slab of inbox
/// slots, reproducing [`SimBackend`](crate::SimBackend)'s observable
/// behaviour exactly at any worker count.
#[derive(Clone, Copy, Debug, Default)]
pub struct PooledBackend {
    /// Worker threads for this backend instance; `0` defers to the process
    /// default (and ultimately to the machine's parallelism).
    workers: usize,
}

impl PooledBackend {
    /// A backend with an explicit worker count (`0` = auto, `1` = serial
    /// inline execution, `k ≥ 2` = `k` pool workers).
    pub fn new(workers: usize) -> Self {
        PooledBackend { workers }
    }

    /// Overrides the worker count used by `PooledBackend::default()` (and
    /// therefore by [`BackendKind::Pooled`](crate::BackendKind)) for the
    /// rest of the process. Intended for binaries translating a `--workers`
    /// flag once at startup. Worker counts are observationally equivalent —
    /// this changes wall-clock time, never results.
    pub fn set_process_default_workers(workers: usize) {
        DEFAULT_WORKERS.store(workers, Ordering::Relaxed);
    }

    /// The worker count this instance will actually use: its own if set,
    /// else the process default, else the machine's available parallelism
    /// (capped at 8 — round tasks are memory-bound well before that).
    pub fn effective_workers(&self) -> usize {
        let configured = if self.workers != 0 {
            self.workers
        } else {
            DEFAULT_WORKERS.load(Ordering::Relaxed)
        };
        if configured != 0 {
            return configured;
        }
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(8)
    }
}

/// One sender's slab row for a round: slot `r` holds the message this
/// process sent to process `r`, if it survived faults and the payload cap.
type Row<M> = Vec<Option<Sealed<M>>>;

/// What a send task hands back at the phase fence.
struct SendOut<M, O> {
    actor: Box<dyn Actor<Msg = M, Output = O>>,
    row: Row<M>,
    metrics: RoundMetrics,
    /// Trace events in emission order; the sender and round are fixed per
    /// task, so appending tasks in process-index order yields the global
    /// `(round, sender, seq)` order with no sort.
    trace: Vec<TraceEvent>,
    malformed: Vec<MalformedSend>,
}

/// What a deliver task hands back at the phase fence.
struct DeliverOut<M, O> {
    actor: Box<dyn Actor<Msg = M, Output = O>>,
    decided: bool,
}

impl<M, O> Substrate<M, O> for PooledBackend
where
    M: Clone + Debug + WireSize + Send + Sync + 'static,
    O: Send + 'static,
{
    fn execute(&self, job: Job<M, O>) -> ExecutionReport<O> {
        let Job {
            actors,
            correct,
            topology,
            max_rounds,
            faults,
            trace_capacity,
            trace_mode,
            payload_cap,
            spans,
            metrics: registry,
        } = job;
        let n = actors.len();
        assert!(n >= 1, "pooled backend needs at least one process");

        let round_hist = registry.as_ref().map(|m| {
            m.histogram(&opr_metrics::labeled(
                "opr_round_ns",
                &[("backend", "pooled")],
            ))
        });
        let pool = RunPool::new(self.effective_workers());
        let topology = Arc::new(topology);
        let faults = Arc::new(faults);
        let trace_enabled = trace_capacity.is_some();

        // Per-process state the coordinator owns between fences. Actors and
        // rows move into tasks and come back; the `Option` is the in-flight
        // marker.
        let mut actor_slots: Vec<Option<Box<dyn Actor<Msg = M, Output = O>>>> =
            actors.into_iter().map(Some).collect();
        let mut row_slots: Vec<Option<Row<M>>> = (0..n)
            .map(|_| Some((0..n).map(|_| None).collect()))
            .collect();
        let mut decided = vec![false; n];

        let mut executed: u32 = 0;
        let mut metrics = RunMetrics::new();
        let mut trace_events: Vec<TraceEvent> = Vec::new();
        let mut malformed: Vec<MalformedSend> = Vec::new();
        let correct = Arc::new(correct);

        let mut round = Round::FIRST;
        loop {
            let all_decided = correct
                .iter()
                .zip(&decided)
                .filter(|(&c, _)| c)
                .all(|(_, d)| *d);
            if all_decided || executed >= max_rounds {
                break;
            }
            let span_start =
                (spans.is_some() || round_hist.is_some()).then(std::time::Instant::now);

            // Phase A: send. One task per process; the fence is run_batch
            // returning with every row populated.
            let send_tasks: Vec<_> = (0..n)
                .map(|me| {
                    let actor = actor_slots[me]
                        .take()
                        .expect("actor at rest between fences");
                    let row = row_slots[me].take().expect("row at rest between fences");
                    let topology = Arc::clone(&topology);
                    let faults = Arc::clone(&faults);
                    let correct = Arc::clone(&correct);
                    move || {
                        send_step(
                            me,
                            actor,
                            row,
                            round,
                            &topology,
                            &faults,
                            &correct,
                            payload_cap,
                            trace_enabled,
                        )
                    }
                })
                .collect();
            let mut round_metrics = RoundMetrics::default();
            let mut panic_message: Option<String> = None;
            for (me, result) in pool.run_batch(send_tasks).into_iter().enumerate() {
                match result {
                    Ok(out) => {
                        let SendOut {
                            actor,
                            row,
                            metrics: rm,
                            trace,
                            malformed: bad,
                        } = out;
                        actor_slots[me] = Some(actor);
                        row_slots[me] = Some(row);
                        round_metrics.messages_correct += rm.messages_correct;
                        round_metrics.messages_faulty += rm.messages_faulty;
                        round_metrics.bits_correct += rm.bits_correct;
                        round_metrics.max_message_bits =
                            round_metrics.max_message_bits.max(rm.max_message_bits);
                        trace_events.extend(trace);
                        malformed.extend(bad);
                    }
                    Err(panic) => {
                        // The first (lowest-index) panic is the one the
                        // caller observes; the report of a panicked run is
                        // never returned, so nothing else needs salvaging.
                        panic_message.get_or_insert(panic.message);
                    }
                }
            }
            if let Some(msg) = panic_message {
                panic!("{msg}");
            }

            // Phase B: deliver. Rows freeze into a shared slab; one task per
            // receiver walks its in-links in canonical label order.
            let slab: Arc<Vec<Row<M>>> = Arc::new(
                row_slots
                    .iter_mut()
                    .map(|slot| slot.take().expect("every send task returned its row"))
                    .collect(),
            );
            let deliver_tasks: Vec<_> = (0..n)
                .map(|me| {
                    let actor = actor_slots[me]
                        .take()
                        .expect("actor at rest between fences");
                    let slab = Arc::clone(&slab);
                    let topology = Arc::clone(&topology);
                    move || deliver_step(me, actor, round, &slab, &topology)
                })
                .collect();
            let mut panic_message: Option<String> = None;
            for (me, result) in pool.run_batch(deliver_tasks).into_iter().enumerate() {
                match result {
                    Ok(out) => {
                        decided[me] = out.decided;
                        actor_slots[me] = Some(out.actor);
                    }
                    Err(panic) => {
                        panic_message.get_or_insert(panic.message);
                    }
                }
            }
            if let Some(msg) = panic_message {
                panic!("{msg}");
            }

            // Reclaim the slab for the next round: the deliver tasks dropped
            // their clones at the fence, so the coordinator is sole owner.
            let mut rows = Arc::try_unwrap(slab)
                .unwrap_or_else(|_| unreachable!("deliver fence released every slab handle"));
            for (slot, row) in row_slots.iter_mut().zip(rows.iter_mut()) {
                row.iter_mut().for_each(|cell| *cell = None);
                *slot = Some(std::mem::take(row));
            }

            executed = round.number();
            metrics.push_round(round_metrics);
            if let Some(start) = span_start {
                if let Some(hist) = &round_hist {
                    hist.record(start.elapsed().as_nanos() as u64);
                }
                if let Some(log) = &spans {
                    log.lock()
                        .unwrap()
                        .record_indexed("round", u64::from(round.number()), start);
                }
            }
            round = round.next();
        }

        let trace = trace_capacity.map(|capacity| {
            let mut trace = Trace::with_mode(capacity, trace_mode);
            for event in trace_events {
                trace.record(event);
            }
            trace.normalize();
            trace
        });

        let outputs: Vec<Option<O>> = actor_slots
            .iter()
            .map(|slot| slot.as_ref().expect("no task in flight").output())
            .collect();
        let completed = correct
            .iter()
            .zip(&decided)
            .filter(|(&c, _)| c)
            .all(|(_, d)| *d);

        ExecutionReport {
            rounds_executed: executed,
            completed,
            outputs,
            metrics,
            trace,
            malformed,
        }
    }
}

/// One process's send step: identical routing, fault, metric, trace and
/// malformed-send semantics to the threaded backend's send phase, except
/// messages land in the slab row instead of mpsc queues.
#[allow(clippy::too_many_arguments)]
fn send_step<M, O>(
    me: usize,
    mut actor: Box<dyn Actor<Msg = M, Output = O>>,
    mut row: Row<M>,
    round: Round,
    topology: &Topology,
    faults: &crate::FaultPlan,
    correct: &[bool],
    payload_cap: Option<u64>,
    trace_enabled: bool,
) -> SendOut<M, O>
where
    M: Clone + Debug + WireSize,
{
    let n = row.len();
    let sender = ProcessIndex::new(me);
    let is_correct = correct[me];
    let mut metrics = RoundMetrics::default();
    let mut trace: Vec<TraceEvent> = Vec::new();
    let mut malformed: Vec<MalformedSend> = Vec::new();

    let outbox = actor.send(round);
    {
        let mut deliver_one = |link: LinkId, msg: Sealed<M>, malformed: &mut Vec<MalformedSend>| {
            // Cached inside the seal: computed once per payload, shared by
            // the cap check, metrics and all N slots of a broadcast.
            let bits = msg.wire_bits();
            if let Some(cap) = payload_cap {
                if bits > cap {
                    malformed.push(MalformedSend {
                        sender,
                        round,
                        kind: MalformedKind::OversizedPayload { bits, cap },
                    });
                    return;
                }
            }
            if !faults.delivers(round, sender, link) {
                return;
            }
            let receiver = topology.peer(sender, link);
            let in_label = topology.incoming_label(receiver, sender);
            let self_loop = receiver == sender;
            if is_correct {
                if !self_loop {
                    metrics.messages_correct += 1;
                    metrics.bits_correct += bits;
                }
                metrics.max_message_bits = metrics.max_message_bits.max(bits);
            } else if !self_loop {
                metrics.messages_faulty += 1;
            }
            if trace_enabled {
                trace.push(TraceEvent {
                    round,
                    sender,
                    receiver,
                    link: in_label,
                    message: msg.rendered().to_owned(),
                });
            }
            row[receiver.index()] = Some(msg);
        };
        match outbox {
            Outbox::Silent => {}
            Outbox::Broadcast(msg) => {
                // Seal once; the slab fan-out is a refcount bump per slot,
                // not a deep copy per link.
                let sealed = Sealed::new(msg);
                for l in 1..=n {
                    deliver_one(LinkId::new(l), sealed.clone(), &mut malformed);
                }
            }
            Outbox::Multicast(entries) => {
                let mut seen = vec![false; n];
                for (link, msg) in entries {
                    if link.label() > n {
                        malformed.push(MalformedSend {
                            sender,
                            round,
                            kind: MalformedKind::LinkOutOfRange {
                                label: link.label(),
                                n,
                            },
                        });
                        continue;
                    }
                    if std::mem::replace(&mut seen[link.index()], true) {
                        malformed.push(MalformedSend {
                            sender,
                            round,
                            kind: MalformedKind::DuplicateLink {
                                label: link.label(),
                            },
                        });
                        continue;
                    }
                    // Equivocation stays per-link owned: each entry is its
                    // own payload, sealed individually.
                    deliver_one(link, Sealed::new(msg), &mut malformed);
                }
            }
        }
    }
    SendOut {
        actor,
        row,
        metrics,
        trace,
        malformed,
    }
}

/// One process's deliver step: walk in-links in canonical label order, read
/// the slab, deliver, and report whether the actor has decided.
fn deliver_step<M, O>(
    me: usize,
    mut actor: Box<dyn Actor<Msg = M, Output = O>>,
    round: Round,
    slab: &[Row<M>],
    topology: &Topology,
) -> DeliverOut<M, O>
where
    M: Clone + Debug + WireSize,
{
    let n = slab.len();
    let receiver = ProcessIndex::new(me);
    let mut entries: Vec<(LinkId, Sealed<M>)> = Vec::new();
    // `incoming_label(r, peer(r, l)) == l` by topology construction, so the
    // process whose message arrives at `receiver` over in-label `l` is
    // exactly `peer(receiver, l)` — walking labels ascending reads the slab
    // in the canonical order every backend must present.
    for l in 1..=n {
        let link = LinkId::new(l);
        let sender = topology.peer(receiver, link);
        if let Some(msg) = &slab[sender.index()][me] {
            entries.push((link, msg.clone()));
        }
    }
    actor.deliver(round, Inbox::from_sealed(entries));
    let decided = actor.output().is_some();
    DeliverOut { actor, decided }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::BackendKind;
    use crate::FaultPlan;

    #[derive(Clone, Debug)]
    struct Num(u64);
    impl WireSize for Num {
        fn wire_bits(&self) -> u64 {
            64
        }
    }

    /// Broadcasts its value; decides the sum of round-1 values.
    struct Summer {
        value: u64,
        sum: Option<u64>,
    }
    impl Actor for Summer {
        type Msg = Num;
        type Output = u64;
        fn send(&mut self, _round: Round) -> Outbox<Num> {
            Outbox::Broadcast(Num(self.value))
        }
        fn deliver(&mut self, _round: Round, inbox: Inbox<Num>) {
            if self.sum.is_none() {
                self.sum = Some(inbox.messages().map(|(_, m)| m.0).sum());
            }
        }
        fn output(&self) -> Option<u64> {
            self.sum
        }
    }

    /// Per-link equivocator that never decides.
    struct Equivocator(usize);
    impl Actor for Equivocator {
        type Msg = Num;
        type Output = u64;
        fn send(&mut self, _round: Round) -> Outbox<Num> {
            Outbox::Multicast(
                (1..=self.0)
                    .map(|l| (LinkId::new(l), Num(1000 * l as u64)))
                    .collect(),
            )
        }
        fn deliver(&mut self, _round: Round, _inbox: Inbox<Num>) {}
        fn output(&self) -> Option<u64> {
            None
        }
    }

    fn summers(values: &[u64]) -> Vec<Box<dyn Actor<Msg = Num, Output = u64>>> {
        values
            .iter()
            .map(|&v| {
                Box::new(Summer {
                    value: v,
                    sum: None,
                }) as _
            })
            .collect()
    }

    fn assert_reports_match(sim: &ExecutionReport<u64>, pooled: &ExecutionReport<u64>) {
        assert_eq!(sim.outputs, pooled.outputs);
        assert_eq!(sim.metrics, pooled.metrics);
        assert_eq!(sim.rounds_executed, pooled.rounds_executed);
        assert_eq!(sim.completed, pooled.completed);
        assert_eq!(sim.malformed, pooled.malformed);
    }

    #[test]
    fn matches_reference_backend_on_clean_runs() {
        for seed in 0..5u64 {
            let job = |_| Job::new(summers(&[3, 1, 4, 1, 5, 9]), Topology::seeded(6, seed), 4);
            let sim = BackendKind::Sim.execute(job(()));
            let pooled = BackendKind::Pooled.execute(job(()));
            assert_reports_match(&sim, &pooled);
            assert!(pooled.completed, "seed {seed}");
        }
    }

    #[test]
    fn matches_reference_backend_with_equivocator_and_faults() {
        let build = |_| {
            let mut actors = summers(&[10, 20, 30, 40]);
            actors.push(Box::new(Equivocator(5)));
            let correct = vec![true, true, true, true, false];
            Job::with_faulty(actors, correct, Topology::seeded(5, 42), 6).faults(
                FaultPlan::new()
                    .drop_message(0, LinkId::new(2), Round::new(1))
                    .silence_link_from(4, LinkId::new(1), Round::new(1)),
            )
        };
        let sim = BackendKind::Sim.execute(build(()));
        let pooled = BackendKind::Pooled.execute(build(()));
        assert_reports_match(&sim, &pooled);
    }

    #[test]
    fn traces_are_identical_to_the_reference() {
        let job = |_| Job::new(summers(&[7, 8, 9]), Topology::seeded(3, 11), 2).trace(1000);
        let sim = BackendKind::Sim.execute(job(()));
        let pooled = BackendKind::Pooled.execute(job(()));
        let (st, pt) = (sim.trace.unwrap(), pooled.trace.unwrap());
        assert_eq!(st.events(), pt.events());
        assert_eq!(st.dropped(), pt.dropped());
    }

    #[test]
    fn bit_identical_across_worker_counts() {
        for workers in [1, 2, 4] {
            let job = |_| {
                let mut actors = summers(&[10, 20, 30, 40]);
                actors.push(Box::new(Equivocator(5)));
                let correct = vec![true, true, true, true, false];
                Job::with_faulty(actors, correct, Topology::seeded(5, 9), 6).trace(500)
            };
            let serial = PooledBackend::new(1).execute(job(()));
            let parallel = PooledBackend::new(workers).execute(job(()));
            assert_eq!(serial.outputs, parallel.outputs, "workers={workers}");
            assert_eq!(serial.metrics, parallel.metrics, "workers={workers}");
            assert_eq!(
                serial.trace.as_ref().unwrap().events(),
                parallel.trace.as_ref().unwrap().events(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn respects_round_budget_without_deciders() {
        struct Never;
        impl Actor for Never {
            type Msg = Num;
            type Output = u64;
            fn send(&mut self, _round: Round) -> Outbox<Num> {
                Outbox::Silent
            }
            fn deliver(&mut self, _round: Round, _inbox: Inbox<Num>) {}
            fn output(&self) -> Option<u64> {
                None
            }
        }
        let actors: Vec<Box<dyn Actor<Msg = Num, Output = u64>>> =
            vec![Box::new(Never), Box::new(Never)];
        let report = PooledBackend::new(2).execute(Job::new(actors, Topology::canonical(2), 3));
        assert!(!report.completed);
        assert_eq!(report.rounds_executed, 3);
        assert_eq!(report.metrics.rounds_executed(), 3);
    }

    #[test]
    #[should_panic(expected = "deliberate actor failure")]
    fn actor_panics_propagate_to_the_caller() {
        struct Bomb;
        impl Actor for Bomb {
            type Msg = Num;
            type Output = u64;
            fn send(&mut self, _round: Round) -> Outbox<Num> {
                panic!("deliberate actor failure");
            }
            fn deliver(&mut self, _round: Round, _inbox: Inbox<Num>) {}
            fn output(&self) -> Option<u64> {
                None
            }
        }
        let actors: Vec<Box<dyn Actor<Msg = Num, Output = u64>>> = vec![
            Box::new(Bomb),
            Box::new(Summer {
                value: 0,
                sum: None,
            }),
        ];
        let _ = PooledBackend::new(2).execute(Job::new(actors, Topology::canonical(2), 3));
    }

    #[test]
    #[should_panic(expected = "deliver-phase failure")]
    fn deliver_panics_propagate_too() {
        struct LateBomb;
        impl Actor for LateBomb {
            type Msg = Num;
            type Output = u64;
            fn send(&mut self, _round: Round) -> Outbox<Num> {
                Outbox::Silent
            }
            fn deliver(&mut self, _round: Round, _inbox: Inbox<Num>) {
                panic!("deliver-phase failure");
            }
            fn output(&self) -> Option<u64> {
                None
            }
        }
        let actors: Vec<Box<dyn Actor<Msg = Num, Output = u64>>> =
            vec![Box::new(LateBomb), Box::new(LateBomb)];
        let _ = PooledBackend::new(1).execute(Job::new(actors, Topology::canonical(2), 3));
    }

    #[test]
    fn malformed_sends_match_reference_backend_exactly() {
        /// Sends one duplicate and one out-of-range link label every round.
        struct Sloppy;
        impl Actor for Sloppy {
            type Msg = Num;
            type Output = u64;
            fn send(&mut self, _round: Round) -> Outbox<Num> {
                Outbox::Multicast(vec![
                    (LinkId::new(1), Num(1)),
                    (LinkId::new(1), Num(2)),
                    (LinkId::new(99), Num(3)),
                ])
            }
            fn deliver(&mut self, _round: Round, _inbox: Inbox<Num>) {}
            fn output(&self) -> Option<u64> {
                None
            }
        }
        let build = |_| {
            let mut actors = summers(&[10, 20, 30]);
            actors.push(Box::new(Sloppy));
            let correct = vec![true, true, true, false];
            Job::with_faulty(actors, correct, Topology::seeded(4, 7), 3).payload_cap(64)
        };
        let sim = BackendKind::Sim.execute(build(()));
        let pooled = BackendKind::Pooled.execute(build(()));
        assert!(!sim.malformed.is_empty());
        assert_reports_match(&sim, &pooled);
    }

    #[test]
    fn payload_cap_matches_reference_backend() {
        let build = |_| Job::new(summers(&[1, 2]), Topology::canonical(2), 2).payload_cap(32);
        let sim = BackendKind::Sim.execute(build(()));
        let pooled = BackendKind::Pooled.execute(build(()));
        assert_eq!(sim.malformed.len(), 4);
        assert_reports_match(&sim, &pooled);
    }

    #[test]
    fn single_process_self_loop_works() {
        let job = |_| Job::new(summers(&[5]), Topology::canonical(1), 2);
        let sim = BackendKind::Sim.execute(job(()));
        let pooled = BackendKind::Pooled.execute(job(()));
        assert_reports_match(&sim, &pooled);
        assert_eq!(pooled.outputs, vec![Some(5)]);
    }

    #[test]
    fn explicit_worker_counts_override_the_process_default() {
        assert_eq!(PooledBackend::new(3).effective_workers(), 3);
        assert!(PooledBackend::default().effective_workers() >= 1);
    }
}
