//! Transport-level fault injection: scheduled link failures *below* the
//! adversary layer.
//!
//! The Byzantine adversaries in `opr-adversary` act through the protocol
//! interface — they choose what to send. A [`FaultPlan`] instead fails the
//! *links themselves*: a scheduled message drop, or a link that falls silent
//! from some round on (in the synchronous model a message delayed past its
//! round boundary is indistinguishable from silence, so "delay-to-silence"
//! is the honest name for the second schedule). Crash-style faults compose
//! from these: silencing every outgoing link of a process from round `r` is
//! exactly a crash at the end of round `r − 1`.
//!
//! Links are identified by `(sender index, outgoing link label)` — the
//! sender-side view, matching where a real transport would fail. Plans are
//! applied identically by every backend, before routing, metrics and
//! tracing.

use opr_types::{LinkId, ProcessIndex, Round};
use std::collections::{BTreeMap, BTreeSet};

/// One scheduled transport fault, the unit a [`FaultPlan`] is built from —
/// and the unit the chaos shrinker removes or weakens when minimizing a
/// failing schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultEvent {
    /// Drop the message `sender` emits on `link` in exactly `round`.
    Drop {
        /// The sending process index.
        sender: usize,
        /// The 1-based outgoing link label.
        link: usize,
        /// The 1-based round.
        round: u32,
    },
    /// Silence `sender`'s `link` from `from` onwards.
    SilenceLink {
        /// The sending process index.
        sender: usize,
        /// The 1-based outgoing link label.
        link: usize,
        /// First silent round (1-based).
        from: u32,
    },
    /// Silence every outgoing link of `sender` from `from` onwards.
    Crash {
        /// The crashing process index.
        sender: usize,
        /// First silent round (1-based).
        from: u32,
    },
}

impl FaultEvent {
    /// The process whose outgoing traffic this event disturbs.
    pub fn sender(&self) -> usize {
        match *self {
            FaultEvent::Drop { sender, .. }
            | FaultEvent::SilenceLink { sender, .. }
            | FaultEvent::Crash { sender, .. } => sender,
        }
    }
}

/// A deterministic schedule of transport faults.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// One-shot drops: `(sender, link label, round)`.
    drops: BTreeSet<(usize, usize, u32)>,
    /// Per-link silence onset: `(sender, link label) → first silent round`.
    link_silences: BTreeMap<(usize, usize), u32>,
    /// Whole-process silence onset: `sender → first silent round`.
    process_silences: BTreeMap<usize, u32>,
}

impl FaultPlan {
    /// An empty plan (all links healthy forever).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Drops the message `sender` emits on `link` in exactly `round`.
    /// Other rounds on the link are unaffected.
    pub fn drop_message(mut self, sender: usize, link: LinkId, round: Round) -> Self {
        self.drops.insert((sender, link.label(), round.number()));
        self
    }

    /// Silences `sender`'s `link` from `round` onwards — the
    /// delay-to-silence schedule: every message from that round on is
    /// delayed past its round boundary and therefore never delivered.
    pub fn silence_link_from(mut self, sender: usize, link: LinkId, round: Round) -> Self {
        let entry = self
            .link_silences
            .entry((sender, link.label()))
            .or_insert(round.number());
        *entry = (*entry).min(round.number());
        self
    }

    /// Silences every outgoing link of `sender` from `round` onwards — a
    /// crash at the transport layer, invisible to (and unchosen by) the
    /// actor above.
    pub fn crash_from(mut self, sender: usize, round: Round) -> Self {
        let entry = self
            .process_silences
            .entry(sender)
            .or_insert(round.number());
        *entry = (*entry).min(round.number());
        self
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.drops.is_empty() && self.link_silences.is_empty() && self.process_silences.is_empty()
    }

    /// The plan as a canonical, ordered list of [`FaultEvent`]s — drops,
    /// then link silences, then crashes, each in key order.
    /// `FaultPlan::from_events(plan.events()) == plan` always holds.
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut events: Vec<FaultEvent> = Vec::new();
        events.extend(
            self.drops
                .iter()
                .map(|&(sender, link, round)| FaultEvent::Drop {
                    sender,
                    link,
                    round,
                }),
        );
        events.extend(
            self.link_silences
                .iter()
                .map(|(&(sender, link), &from)| FaultEvent::SilenceLink { sender, link, from }),
        );
        events.extend(
            self.process_silences
                .iter()
                .map(|(&sender, &from)| FaultEvent::Crash { sender, from }),
        );
        events
    }

    /// Rebuilds a plan from events (the inverse of [`FaultPlan::events`],
    /// up to earliest-onset merging of duplicate silences).
    pub fn from_events<I: IntoIterator<Item = FaultEvent>>(events: I) -> Self {
        events
            .into_iter()
            .fold(FaultPlan::new(), |plan, event| match event {
                FaultEvent::Drop {
                    sender,
                    link,
                    round,
                } => plan.drop_message(sender, LinkId::new(link), Round::new(round)),
                FaultEvent::SilenceLink { sender, link, from } => {
                    plan.silence_link_from(sender, LinkId::new(link), Round::new(from))
                }
                FaultEvent::Crash { sender, from } => plan.crash_from(sender, Round::new(from)),
            })
    }

    /// The set of processes whose outgoing traffic the plan disturbs. In
    /// oracle accounting these count toward the fault budget alongside the
    /// Byzantine processes: a correct process with a faulted link is, to its
    /// receivers, indistinguishable from a faulty one.
    pub fn disturbed_senders(&self) -> BTreeSet<usize> {
        self.events().iter().map(FaultEvent::sender).collect()
    }

    /// Whether a message sent by `sender` on `link` in `round` traverses
    /// the transport.
    pub fn delivers(&self, round: Round, sender: ProcessIndex, link: LinkId) -> bool {
        let (s, l, r) = (sender.index(), link.label(), round.number());
        if self.drops.contains(&(s, l, r)) {
            return false;
        }
        if let Some(&from) = self.link_silences.get(&(s, l)) {
            if r >= from {
                return false;
            }
        }
        if let Some(&from) = self.process_silences.get(&s) {
            if r >= from {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lnk(l: usize) -> LinkId {
        LinkId::new(l)
    }

    fn rnd(r: u32) -> Round {
        Round::new(r)
    }

    #[test]
    fn empty_plan_delivers_everything() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        for r in 1..5 {
            for l in 1..4 {
                assert!(plan.delivers(rnd(r), ProcessIndex::new(0), lnk(l)));
            }
        }
    }

    #[test]
    fn drop_message_hits_exactly_one_round_on_one_link() {
        let plan = FaultPlan::new().drop_message(1, lnk(2), rnd(3));
        assert!(!plan.is_empty());
        // The scheduled (sender, link, round) is dropped…
        assert!(!plan.delivers(rnd(3), ProcessIndex::new(1), lnk(2)));
        // …while neighbouring rounds, links and senders are untouched.
        assert!(plan.delivers(rnd(2), ProcessIndex::new(1), lnk(2)));
        assert!(plan.delivers(rnd(4), ProcessIndex::new(1), lnk(2)));
        assert!(plan.delivers(rnd(3), ProcessIndex::new(1), lnk(1)));
        assert!(plan.delivers(rnd(3), ProcessIndex::new(0), lnk(2)));
    }

    #[test]
    fn silence_link_from_is_permanent_from_onset() {
        let plan = FaultPlan::new().silence_link_from(0, lnk(1), rnd(2));
        assert!(plan.delivers(rnd(1), ProcessIndex::new(0), lnk(1)));
        for r in 2..10 {
            assert!(
                !plan.delivers(rnd(r), ProcessIndex::new(0), lnk(1)),
                "round {r}"
            );
        }
        // Other links of the same sender stay healthy.
        assert!(plan.delivers(rnd(5), ProcessIndex::new(0), lnk(2)));
    }

    #[test]
    fn crash_from_silences_every_link_of_the_process() {
        let plan = FaultPlan::new().crash_from(2, rnd(4));
        for l in 1..=5 {
            assert!(plan.delivers(rnd(3), ProcessIndex::new(2), lnk(l)));
            assert!(!plan.delivers(rnd(4), ProcessIndex::new(2), lnk(l)));
            assert!(!plan.delivers(rnd(9), ProcessIndex::new(2), lnk(l)));
        }
        // Other processes unaffected.
        assert!(plan.delivers(rnd(9), ProcessIndex::new(1), lnk(1)));
    }

    #[test]
    fn earliest_onset_wins_when_scheduled_twice() {
        let plan = FaultPlan::new()
            .silence_link_from(0, lnk(1), rnd(5))
            .silence_link_from(0, lnk(1), rnd(3))
            .crash_from(1, rnd(6))
            .crash_from(1, rnd(2));
        assert!(!plan.delivers(rnd(3), ProcessIndex::new(0), lnk(1)));
        assert!(!plan.delivers(rnd(2), ProcessIndex::new(1), lnk(4)));
        assert!(plan.delivers(rnd(1), ProcessIndex::new(1), lnk(4)));
    }

    #[test]
    fn schedules_compose() {
        let plan = FaultPlan::new()
            .drop_message(0, lnk(1), rnd(1))
            .silence_link_from(0, lnk(2), rnd(2))
            .crash_from(1, rnd(3));
        assert!(!plan.delivers(rnd(1), ProcessIndex::new(0), lnk(1)));
        assert!(plan.delivers(rnd(1), ProcessIndex::new(0), lnk(2)));
        assert!(!plan.delivers(rnd(2), ProcessIndex::new(0), lnk(2)));
        assert!(!plan.delivers(rnd(3), ProcessIndex::new(1), lnk(1)));
    }
}
