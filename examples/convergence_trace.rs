//! Convergence trace: watch the validated approximate agreement contract
//! the rank spread `Δ_r` round by round under the worst-case (rank-skew)
//! adversary — the live version of figure F1.
//!
//! ```text
//! cargo run --example convergence_trace
//! ```

use opr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, t) = (13usize, 4usize);
    let cfg = SystemConfig::new(n, t)?;
    let ids = IdDistribution::EvenSpaced.generate(n - t, 3);

    let out = RenamingRun::builder(cfg, Regime::LogTime)
        .correct_ids(ids)
        .adversary(AdversarySpec::RankSkew, t)
        .seed(11)
        .run()?;

    let probe = out.alg1_probe.expect("alg1 probe");
    let series = probe.spread_series();
    let sigma = cfg.sigma();
    let threshold = (cfg.delta() - 1.0) / 2.0;

    println!("N = {n}, t = {t}, σ_t = {sigma}, adversary = rank-skew");
    println!("order-preservation threshold (δ−1)/2 = {threshold:.6}\n");
    println!("{:<22} {:>14} {:>12}", "step", "max spread Δ", "bar");
    let scale = 40.0 / series.first().copied().unwrap_or(1.0).max(1e-12);
    for (i, spread) in series.iter().enumerate() {
        let label = if i == 0 {
            "after id selection".to_owned()
        } else {
            format!("voting step {i}")
        };
        let bar = "#".repeat(((spread * scale).ceil() as usize).clamp(1, 60));
        println!("{label:<22} {spread:>14.8} {bar:>12}");
    }
    let last = *series.last().unwrap();
    println!(
        "\nfinal spread {last:.2e} < threshold {threshold:.2e}: rounding cannot \
         clash or invert — order-preserving renaming achieved in {} steps",
        out.stats.rounds
    );
    assert!(last < threshold);
    assert_eq!(out.stats.violations, 0);
    Ok(())
}
