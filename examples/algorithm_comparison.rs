//! Side-by-side comparison of every implementation in the workspace — the
//! paper's algorithms and the four related-work baselines — on one
//! workload, at each implementation's minimal legal `N` for `t = 2`.
//!
//! ```text
//! cargo run --example algorithm_comparison
//! ```

use opr::prelude::*;
use opr::types::SystemConfig as Cfg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t = 2usize;
    println!("t = {t}; every implementation at its minimal N\n");
    println!(
        "{:<14} {:>4} {:>7} {:>9} {:>11} {:>9} {:>10}",
        "algorithm", "N", "rounds", "messages", "kbits-sent", "max-name", "namespace"
    );

    for alg in Algorithm::ALL {
        let n = alg.minimal_n(t);
        let cfg = Cfg::new(n, t)?;
        let ids = IdDistribution::SparseRandom.generate(n - t, 42);
        let spec = if alg.byzantine_suite_applicable() {
            AdversarySpec::IdForge
        } else {
            AdversarySpec::Silent
        };
        let stats = alg.run(cfg, &ids, t, spec, 9)?;
        assert_eq!(stats.violations, 0, "{alg}");
        println!(
            "{:<14} {:>4} {:>7} {:>9} {:>11.1} {:>9} {:>10}",
            alg.label(),
            n,
            stats.rounds,
            stats.messages,
            stats.bits as f64 / 1000.0,
            stats.max_name.unwrap_or(0),
            alg.namespace_bound(n, t),
        );
    }

    println!(
        "\nreading guide: alg4 wins rounds outright (2) but pays namespace N²; \
         alg1-const gets strong renaming (namespace N) in 8 rounds; \
         b2-consensus shows the Ω(t) round cost the paper avoids; \
         b4-translated shows the 2× round and 2N namespace toll of generic \
         crash-to-Byzantine translation."
    );
    Ok(())
}
