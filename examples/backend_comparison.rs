//! Run the same renaming system on both execution substrates and show that
//! the observable results — names, rounds, message counts — are identical,
//! while only the execution strategy differs (single-threaded simulator vs
//! one OS thread per process).
//!
//! ```text
//! cargo run --example backend_comparison
//! ```

use opr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SystemConfig::new(10, 3)?;
    let ids: Vec<OriginalId> = [14u64, 3, 77, 21, 58, 9, 42].map(OriginalId::new).into();

    let mut outputs = Vec::new();
    for backend in opr::transport::BackendKind::ALL {
        let out = RenamingRun::builder(cfg, Regime::LogTime)
            .correct_ids(ids.clone())
            .adversary(AdversarySpec::EchoSplit, 3)
            .seed(42)
            .backend(backend)
            .run()?;
        println!(
            "{backend:>8}: rounds = {}, messages = {}, bits = {}, max name = {}",
            out.stats.rounds,
            out.stats.messages,
            out.stats.bits,
            out.stats.max_name.unwrap_or(-1),
        );
        outputs.push(out);
    }

    // Bit-for-bit equivalence: every decided name and every counter agrees.
    let (sim, threaded) = (&outputs[0], &outputs[1]);
    assert_eq!(sim.outcome, threaded.outcome);
    assert_eq!(sim.stats.rounds, threaded.stats.rounds);
    assert_eq!(sim.stats.messages, threaded.stats.messages);
    assert_eq!(sim.stats.bits, threaded.stats.bits);
    assert!(sim
        .outcome
        .verify(cfg.namespace_bound(Regime::LogTime))
        .is_empty());
    println!("\nboth substrates produced identical outcomes and metrics ✓");
    Ok(())
}
