//! Priority arbitration — the paper's motivating use case for *order
//! preservation*: original ids encode priority (e.g. lease age for a shared
//! resource), and nodes must map themselves into a compact slot table
//! without ever inverting two priorities, even with Byzantine peers.
//!
//! We compare the 2-step algorithm (fast path, `N > 2t² + t`, slots in
//! `[1..N²]`) against the constant-time strong variant (`N > t² + 2t`,
//! slots in `[1..N]`) on the same workload.
//!
//! ```text
//! cargo run --example priority_arbitration
//! ```

use opr::prelude::*;

/// Replicas with lease-age-encoded ids: older lease (smaller id) = higher
/// priority.
fn lease_ids() -> Vec<OriginalId> {
    // Lease timestamps in microseconds since epoch (sparse, meaningful
    // order): the renaming must keep replica "a" ahead of "b" ahead of "c"…
    [
        1_688_000_123_001u64, // a: oldest lease — highest priority
        1_688_000_125_444,    // b
        1_688_000_125_890,    // c (barely younger than b!)
        1_688_000_201_777,    // d
        1_688_001_990_002,    // e
        1_688_002_000_000,    // f
        1_688_002_000_001,    // g (adjacent to f)
        1_688_010_101_010,    // h
        1_688_020_202_020,    // i
    ]
    .map(OriginalId::new)
    .into()
}

fn show(title: &str, out: &RunOutput, bound: u64) {
    println!("\n== {title} ==");
    println!(
        "rounds: {}, messages: {}",
        out.stats.rounds, out.stats.messages
    );
    let names: Vec<(OriginalId, NewName)> = out
        .outcome
        .decisions()
        .iter()
        .filter_map(|(&id, d)| d.map(|n| (id, n)))
        .collect();
    for (label, (id, name)) in ('a'..).zip(&names) {
        println!("  replica {label} (lease {id}) -> priority slot {name}");
    }
    let violations = out.outcome.verify(bound);
    assert!(violations.is_empty(), "{violations:?}");
    println!("order preserved, all slots within [1..{bound}]");
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ids = lease_ids();

    // Fast path: 2 communication steps, t = 2, N = 11 > 2t² + t = 10.
    let cfg_fast = SystemConfig::new(11, 2)?;
    let fast = RenamingRun::builder(cfg_fast, Regime::TwoStep)
        .correct_ids(ids.clone())
        .adversary(AdversarySpec::FakeFlood, 2)
        .seed(7)
        .run()?;
    show(
        "2-step fast path (latency-critical arbitration)",
        &fast,
        cfg_fast.namespace_bound(Regime::TwoStep),
    );

    // Tight table: 8 steps, t = 2, N = 11 > t² + 2t = 8; slots in [1..N].
    let cfg_tight = SystemConfig::new(11, 2)?;
    let tight = RenamingRun::builder(cfg_tight, Regime::ConstantTime)
        .correct_ids(ids)
        .adversary(AdversarySpec::IdForge, 2)
        .seed(7)
        .run()?;
    show(
        "constant-time strong renaming (compact slot table)",
        &tight,
        cfg_tight.namespace_bound(Regime::ConstantTime),
    );

    println!(
        "\ntrade-off: {} steps into a table of {} slots vs {} steps into {} slots",
        fast.stats.rounds,
        cfg_fast.namespace_bound(Regime::TwoStep),
        tight.stats.rounds,
        cfg_tight.namespace_bound(Regime::ConstantTime),
    );
    Ok(())
}
