//! Quickstart: rename 7 processes (2 of them Byzantine) with Algorithm 1
//! and inspect the outcome.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use opr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synchronous system of N = 7 processes, at most t = 2 Byzantine.
    // N > 3t, so Algorithm 1's log-time schedule applies.
    let cfg = SystemConfig::new(7, 2)?;
    println!("system: {cfg}, δ = {:.6}", cfg.delta());
    println!(
        "algorithm 1 will run {} communication steps (4 id-selection + {} voting)",
        cfg.total_steps(Regime::LogTime),
        cfg.voting_steps(Regime::LogTime),
    );

    // Five correct processes with sparse original ids.
    let ids: Vec<OriginalId> = [1400u64, 23, 870_000, 512, 77].map(OriginalId::new).into();

    // Two Byzantine processes running the echo-splitting attack: they try
    // to make a forged id "timely" at some correct processes but not others.
    let out = RenamingRun::builder(cfg, Regime::LogTime)
        .correct_ids(ids)
        .adversary(AdversarySpec::EchoSplit, 2)
        .seed(2026)
        .run()?;

    println!("\nold id -> new name (order must be preserved):");
    for (&id, decision) in out.outcome.decisions() {
        match decision {
            Some(name) => println!("  {id:>8} -> {name}"),
            None => println!("  {id:>8} -> (no decision)"),
        }
    }

    let bound = cfg.namespace_bound(Regime::LogTime);
    let violations = out.outcome.verify(bound);
    println!("\nnamespace bound M = N + t − 1 = {bound}");
    println!("property violations: {}", violations.len());
    println!(
        "rounds: {}, correct messages: {}, bits: {}",
        out.stats.rounds, out.stats.messages, out.stats.bits
    );
    assert!(violations.is_empty());
    Ok(())
}
