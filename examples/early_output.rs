//! The early-output extension: Algorithm 1 decides as soon as its decision
//! is provably frozen, instead of always running the full schedule —
//! `O(1)` output latency when the actual adversary is passive, the full
//! `3⌈log t⌉ + 7` only under active equivocation (cf. the early-deciding
//! renaming of Alistarh, Attiya, Guerraoui & Travers, SIROCCO 2012).
//!
//! Safety argument (see `opr_core::Alg1Tweaks::early_output`): if one
//! voting step delivers a unanimous valid quorum equal to the process's own
//! rank vector, then every correct process holds that exact vector, and the
//! `t`-per-side trim makes it a fixed point of every later step at every
//! correct process — the eventual decision is already determined.
//!
//! ```text
//! cargo run --example early_output
//! ```

use opr::core::runner::{run_alg1, Alg1Options};
use opr::core::Alg1Tweaks;
use opr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, t) = (10usize, 3usize);
    let cfg = SystemConfig::new(n, t)?;
    let schedule_end = cfg.total_steps(Regime::LogTime);
    println!("N = {n}, t = {t}; full schedule = {schedule_end} steps\n");
    println!(
        "{:<14} {:>8} {:>15} {:>12}",
        "adversary", "faulty", "decided-at-step", "steps-saved"
    );

    for (spec, faulty) in [
        (AdversarySpec::Silent, 0usize),
        (AdversarySpec::Silent, t),
        (AdversarySpec::CrashMidway, t),
        (AdversarySpec::IdForge, t),
        (AdversarySpec::RankSkew, t),
    ] {
        let ids = IdDistribution::SparseRandom.generate(n - faulty, 7);
        let result = run_alg1(
            cfg,
            Regime::LogTime,
            &ids,
            faulty,
            |env| spec.build_alg1(env),
            Alg1Options {
                seed: 3,
                allow_regime_violation: false,
                tweaks: Alg1Tweaks {
                    early_output: true,
                    ..Alg1Tweaks::default()
                },
                ..Alg1Options::default()
            },
        )?;
        assert!(result
            .outcome
            .verify(cfg.namespace_bound(Regime::LogTime))
            .is_empty());
        let decided = result.probe.last_decision_step().expect("all decided");
        println!(
            "{:<14} {:>8} {:>15} {:>12}",
            spec.label(),
            faulty,
            decided,
            schedule_end - decided
        );
    }

    println!(
        "\npassive faults freeze the vote at the first voting step (step 5); \
         active equivocators keep views apart and force the full schedule — \
         the price of the worst case is paid only when the worst case shows up"
    );
    Ok(())
}
