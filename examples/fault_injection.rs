//! Fault injection: run Algorithm 1 against the entire Byzantine strategy
//! suite and report what each attack achieved (spoiler: never a property
//! violation, but measurably different namespaces, rejected votes and rank
//! spreads).
//!
//! ```text
//! cargo run --example fault_injection
//! ```

use opr::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SystemConfig::new(10, 3)?;
    let ids = IdDistribution::EvenSpaced.generate(7, 99);
    println!("system: {cfg}; adversary gets the full t = 3 faulty processes\n");
    println!(
        "{:<14} {:>9} {:>10} {:>14} {:>13} {:>11}",
        "adversary", "max-name", "violations", "rejected-votes", "final-spread", "messages"
    );

    for spec in AdversarySpec::ALG1 {
        let out = RenamingRun::builder(cfg, Regime::LogTime)
            .correct_ids(ids.clone())
            .adversary(spec, 3)
            .seed(5)
            .run()?;
        let probe = out.alg1_probe.as_ref().expect("alg1 runs carry probes");
        let spread = probe.spread_series().last().copied().unwrap_or(0.0);
        println!(
            "{:<14} {:>9} {:>10} {:>14} {:>13.2e} {:>11}",
            spec.label(),
            out.stats.max_name.unwrap_or(0),
            out.stats.violations,
            probe.total_rejected_votes(),
            spread,
            out.stats.messages,
        );
        assert_eq!(out.stats.violations, 0, "{spec} broke the algorithm!");
    }

    println!(
        "\nall attacks absorbed: max name never exceeded N + t − 1 = {}, and \
         isValid rejected every malformed vote",
        cfg.namespace_bound(Regime::LogTime)
    );
    Ok(())
}
