# Development commands. `just ci` is the full gate; individual recipes below.

# Everything CI runs, in order.
ci: fmt-check lint build test

# Formatting gate.
fmt-check:
    cargo fmt --all -- --check

# Reformat in place.
fmt:
    cargo fmt --all

# Lint gate: warnings are errors, across every target. `redundant_clone` is
# opted in (it is off by default) to keep the zero-copy delivery pipeline
# honest about stray payload copies.
lint:
    cargo clippy --workspace --all-targets -- -D warnings -W clippy::redundant_clone

# Tier-1 build.
build:
    cargo build --release

# Full test suite (unit + property + integration + doc tests).
test:
    cargo test -q

# Cross-backend equivalence suite only.
equivalence:
    cargo test -q --test backend_equivalence

# Serial-vs-parallel determinism gate (jobs=1 ≡ jobs=4, both backends).
exec-equivalence:
    cargo test -q --test exec_equivalence

# Bounded chaos smoke campaign (fixed seed, all three backends) — the CI gate.
chaos:
    cargo run --release -p opr-bench --bin chaos -- --seed 42 --runs 200 --budget mixed --backend all --jobs 4

# Long randomized chaos soak (override with `just chaos-soak SEED=7 RUNS=50000 JOBS=8`).
chaos-soak SEED="1" RUNS="20000" JOBS="4":
    cargo run --release -p opr-bench --bin chaos -- --seed {{SEED}} --runs {{RUNS}} --budget mixed --backend both --jobs {{JOBS}}

# Serial-vs-parallel executor throughput (writes crates/bench/BENCH_exec.json).
bench-exec:
    cargo run --release -p opr-bench --bin chaos -- --bench-exec crates/bench/BENCH_exec.json --seed 42 --runs 200 --budget mixed --backend both

# Broadcast fan-out allocation profile: sealed-shared vs per-link-cloned
# payloads (writes crates/bench/BENCH_fanout.json).
bench-fanout:
    cargo run --release -p opr-bench --bin fanout -- --out crates/bench/BENCH_fanout.json

# Round-engine comparison: PooledBackend vs sim vs thread-per-process at
# N in {128, 512, 1024} (writes crates/bench/BENCH_pool.json). `--check`
# gates on pooled-w1 being >=5x threaded at N=128.
bench-pool:
    cargo run --release -p opr-bench --bin pool -- --out crates/bench/BENCH_pool.json --check

# Flood-core comparison: interned slot-bitset Echo/Ready accumulation vs the
# seed BTree set path on identical inputs at N in {128, 512, 1024} (writes
# crates/bench/BENCH_flood.json, ns/round + allocs/round). `--check` gates
# on the bitset core being >=4x the seed path at N=1024.
bench-flood:
    cargo run --release -p opr-bench --bin flood -- --out crates/bench/BENCH_flood.json --check

# Large-N soak: full Alg1 at N=1024, t=300 on the pooled backend under a
# wall-clock ceiling, bit-identical to the simulator, plus the N=512
# sim-vs-pooled cross-check over adversaries and worker counts.
pool-soak:
    cargo test --release -q --test large_n -- --ignored --nocapture

# Replay a repro with the protocol recorder attached and print every
# process's decision waterfall (`just explain my-repro.json --events e.jsonl`).
explain FILE="tests/data/chaos-repro.json" *ARGS:
    cargo run --release -p opr-bench --bin chaos -- explain {{FILE}} {{ARGS}}

# Recorder overhead profile: the `obs` group of BENCH_fanout.json (full
# Alg1 runs, recorder off vs on, with the zero-cost-when-off assertion).
bench-obs:
    cargo run --release -p opr-bench --bin fanout -- --out crates/bench/BENCH_fanout.json

# Renaming-as-a-service demo: a short multi-shard epoch run with recycling,
# judged by the ledger oracle suite.
service:
    cargo run --release -p opr-bench --bin service

# Service soak gate: seeded ≥1000-epoch run across 4 shards with recycling;
# must be oracle-clean and bit-identical across jobs and backends.
service-soak EPOCHS="1000":
    cargo run --release -p opr-bench --bin service -- --soak --epochs {{EPOCHS}}

# Service-layer chaos smoke: seeded epoch-engine specs judged by the ledger
# oracles, with a jobs-determinism cross-check per spec.
chaos-service RUNS="40":
    cargo run --release -p opr-bench --bin chaos -- --service --seed 42 --runs {{RUNS}}

# Guided adversary search: beam-search the attack-schedule space for the
# configured fitness signal, emit the top-K finds as replayable repro files
# (`just search FITNESS=rounds EVALS=256`).
search SEED="42" FITNESS="margin" EVALS="96" JOBS="4":
    cargo run --release -p opr-bench --bin chaos -- --search --seed {{SEED}} --budget at --backend both --jobs {{JOBS}} --fitness {{FITNESS}} --evals {{EVALS}} --baseline

# Guided search over service-spec space, judged by ledger shard-pressure
# margins.
search-service SEED="42" EVALS="48":
    cargo run --release -p opr-bench --bin chaos -- --search --service --seed {{SEED}} --evals {{EVALS}}

# Search throughput + trajectory report (writes crates/bench/BENCH_search.json).
bench-search:
    cargo run --release -p opr-bench --bin chaos -- --search --seed 42 --budget at --backend both --jobs 4 --evals 96 --generations 6 --beam 4 --init 24 --top-k 3 --out-dir target --search-report crates/bench/BENCH_search.json --baseline --timing

# Service throughput matrix: names-assigned/sec over shards x jobs x backend
# (writes crates/bench/BENCH_service.json).
bench-service:
    cargo run --release -p opr-bench --bin service -- --bench crates/bench/BENCH_service.json

# Metrics demo: a short instrumented service run writing a Prometheus
# exposition (wall plane overlaid on the deterministic fold) and printing
# the ANSI dashboard.
metrics OUT="metrics.prom":
    cargo run --release -p opr-bench --bin service -- --epochs 20 --metrics {{OUT}} --watch

# Metrics overhead gate: hot-path writes must be allocation-free and the
# registry-off path alloc-identical; writes crates/bench/BENCH_metrics.json
# (per-op ns + snapshot cost at N in {64, 256, 1024} metrics).
bench-metrics:
    cargo run --release -p opr-bench --bin metrics -- --out crates/bench/BENCH_metrics.json

# Regenerate every experiment table (add `--backend threaded` to switch substrate).
tables *ARGS:
    cargo run --release -p opr-bench --bin tables -- {{ARGS}}

# Wall-clock benchmarks (writes BENCH_<target>.json per bench target).
bench:
    cargo bench
