# Development commands. `just ci` is the full gate; individual recipes below.

# Everything CI runs, in order.
ci: fmt-check lint build test

# Formatting gate.
fmt-check:
    cargo fmt --all -- --check

# Reformat in place.
fmt:
    cargo fmt --all

# Lint gate: warnings are errors, across every target.
lint:
    cargo clippy --workspace --all-targets -- -D warnings

# Tier-1 build.
build:
    cargo build --release

# Full test suite (unit + property + integration + doc tests).
test:
    cargo test -q

# Cross-backend equivalence suite only.
equivalence:
    cargo test -q --test backend_equivalence

# Regenerate every experiment table (add `--backend threaded` to switch substrate).
tables *ARGS:
    cargo run --release -p opr-bench --bin tables -- {{ARGS}}

# Wall-clock benchmarks (writes BENCH_<target>.json per bench target).
bench:
    cargo bench
